"""Graph and community-file I/O.

Supports the two text formats the paper's ecosystem uses:

* SNAP-style edge lists: one ``u v [w]`` pair per line, ``#`` comments;
* SNAP community files (for ground truth): one community per line,
  whitespace-separated member ids — the format of the ``top5000`` files.

Plus a compact ``.npz`` binary round-trip for benchmark caching.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    num_vertices=None,
    allow_signed: bool = False,
    on_malformed: str = "strict",
) -> CSRGraph:
    """Read a SNAP-style (optionally weighted) edge-list file.

    Malformed input is rejected with a :class:`GraphFormatError` naming the
    file and line: non-integer or negative vertex ids, and non-finite
    (NaN/inf) or — unless ``allow_signed`` (correlation clustering accepts
    signed weights) — negative edge weights, which would otherwise flow
    silently into CSR construction.

    ``on_malformed="repair"`` tolerates the two defects real crawled edge
    lists routinely carry: self-loop lines are dropped and duplicate
    edges (either orientation) are merged with their weights summed, with
    the counts attached as ``graph.repairs`` (surfaced through
    ``ClusterResult.stats_dict()["input_repairs"]``).  Structural junk —
    bad tokens, negative ids, NaN/inf weights — still raises the typed
    error in both modes: those are not repairable, only wrong.
    """
    if on_malformed not in ("strict", "repair"):
        raise ValueError(
            f"on_malformed must be 'strict' or 'repair', got {on_malformed!r}"
        )
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    f"{path}:{lineno}: vertex ids must be integers, got {line!r}"
                ) from None
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            if len(parts) == 3:
                try:
                    w = float(parts[2])
                except ValueError:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad edge weight {parts[2]!r}"
                    ) from None
                if not math.isfinite(w):
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-finite edge weight {parts[2]!r}"
                    )
                if w < 0 and not allow_signed:
                    raise GraphFormatError(
                        f"{path}:{lineno}: negative edge weight {w:g} "
                        f"(pass allow_signed=True for signed graphs)"
                    )
            else:
                w = 1.0
            us.append(u)
            vs.append(v)
            ws.append(w)
    edges = np.stack(
        [np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)], axis=1
    ) if us else np.zeros((0, 2), dtype=np.int64)
    weights = np.asarray(ws, dtype=np.float64)
    repairs = None
    if on_malformed == "repair":
        edges, weights, repairs = _repair_edges(edges, weights)
    graph = graph_from_edges(edges, weights=weights, num_vertices=num_vertices)
    if repairs is not None:
        graph.repairs = repairs
    return graph


def _repair_edges(edges: np.ndarray, weights: np.ndarray):
    """Drop self-loops and count duplicate merges; see ``read_edge_list``.

    The duplicate *merging* itself is the CSR builder's normal behavior
    (weights summed); repair mode's contribution is dropping loops before
    they reach the self-loop channel and reporting both counts.
    """
    loops = edges[:, 0] == edges[:, 1] if edges.size else np.zeros(0, dtype=bool)
    dropped = int(loops.sum())
    if dropped:
        edges = edges[~loops]
        weights = weights[~loops]
    if edges.size:
        canonical = np.stack(
            [np.minimum(edges[:, 0], edges[:, 1]),
             np.maximum(edges[:, 0], edges[:, 1])],
            axis=1,
        )
        merged = int(edges.shape[0] - np.unique(canonical, axis=0).shape[0])
    else:
        merged = 0
    repairs = {
        "self_loops_dropped": dropped,
        "duplicate_edges_merged": merged,
    }
    return edges, weights, repairs


def write_edge_list(graph: CSRGraph, path: PathLike, weighted: bool = False) -> None:
    """Write the graph's undirected edges (``u < v``) as a text edge list."""
    u, v, w = graph.edge_list()
    with open(path, "w") as handle:
        handle.write(f"# repro graph: n={graph.num_vertices} m={graph.num_edges}\n")
        if weighted:
            for a, b, ww in zip(u, v, w):
                handle.write(f"{a} {b} {ww:.10g}\n")
        else:
            for a, b in zip(u, v):
                handle.write(f"{a} {b}\n")


def write_labels(assignments: np.ndarray, path: PathLike) -> None:
    """Write a clustering as ``vertex<TAB>cluster`` lines, one per vertex.

    The pickle-free round-trip format behind ``repro cluster
    --output-labels`` and ``repro update --labels``: explicit vertex ids
    (unlike the positional ``--output`` format) so a partial edit or a
    reordered file is detected on read instead of silently mis-assigning.
    """
    assignments = np.asarray(assignments)
    with open(path, "w") as handle:
        handle.write(f"# repro labels: n={assignments.size}\n")
        for vertex, cluster in enumerate(assignments):
            handle.write(f"{vertex}\t{int(cluster)}\n")


def read_labels(path: PathLike, num_vertices: Optional[int] = None) -> np.ndarray:
    """Read a ``vertex<TAB>cluster`` label file back into an assignment array.

    Every vertex in ``[0, n)`` must appear exactly once (``n`` inferred
    from the max vertex id, or validated against ``num_vertices``).
    """
    pairs: List[Tuple[int, int]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'vertex<TAB>cluster', got {line!r}"
                )
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from None
    if not pairs:
        return np.zeros(0, dtype=np.int64)
    vertices = np.asarray([p[0] for p in pairs], dtype=np.int64)
    clusters = np.asarray([p[1] for p in pairs], dtype=np.int64)
    n = int(vertices.max()) + 1 if num_vertices is None else int(num_vertices)
    if vertices.min() < 0 or vertices.max() >= n:
        raise GraphFormatError(
            f"{path}: vertex ids outside [0, {n}) in label file"
        )
    seen = np.zeros(n, dtype=bool)
    if seen[vertices].any() or np.unique(vertices).size != vertices.size:
        raise GraphFormatError(f"{path}: duplicate vertex id in label file")
    seen[vertices] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise GraphFormatError(
            f"{path}: label file missing vertex {missing} (expected all of [0, {n}))"
        )
    assignments = np.zeros(n, dtype=np.int64)
    assignments[vertices] = clusters
    return assignments


def read_communities(path: PathLike) -> List[np.ndarray]:
    """Read a SNAP community file: one community (id list) per line."""
    out: List[np.ndarray] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            out.append(np.asarray([int(tok) for tok in line.split()], dtype=np.int64))
    return out


def write_communities(communities: List[np.ndarray], path: PathLike) -> None:
    """Write communities in the SNAP one-per-line format."""
    with open(path, "w") as handle:
        for community in communities:
            handle.write(" ".join(str(int(v)) for v in community) + "\n")


def read_metis(path: PathLike) -> CSRGraph:
    """Read a METIS-format graph file.

    Header: ``n m [fmt]`` where fmt 1 or 11 marks edge weights; body: line
    ``i`` lists vertex ``i``'s neighbors (1-indexed), optionally
    interleaved with weights.  Comment lines start with ``%``.  The format
    used by Grappolo and much of the partitioning/clustering ecosystem.
    """
    with open(path) as handle:
        # Keep empty lines: an isolated vertex's adjacency line is empty.
        lines = [
            line.rstrip("\n")
            for line in handle
            if not line.lstrip().startswith("%")
        ]
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise GraphFormatError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"{path}: METIS header needs 'n m [fmt]'")
    try:
        n = int(header[0])
        declared_edges = int(header[1])
    except ValueError:
        raise GraphFormatError(
            f"{path}: METIS header 'n m' must be integers, got {lines[0]!r}"
        ) from None
    if n < 0 or declared_edges < 0:
        raise GraphFormatError(
            f"{path}: METIS header declares negative counts "
            f"(n={n}, m={declared_edges})"
        )
    fmt = header[2] if len(header) > 2 else "0"
    if not fmt.isdigit() or len(fmt) > 3 or any(c not in "01" for c in fmt):
        raise GraphFormatError(
            f"{path}: bad METIS fmt field {fmt!r} (expected up to three "
            f"binary digits)"
        )
    has_edge_weights = fmt.endswith("1") and fmt != "10"
    body = lines[1:]
    if len(body) < n or any(chunk.strip() for chunk in body[n:]):
        raise GraphFormatError(
            f"{path}: header declares {n} vertices but file has "
            f"{len(body)} adjacency lines"
        )
    lines = lines[: n + 1]
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    for vertex, line in enumerate(lines[1:]):
        tokens = line.split()
        step = 2 if has_edge_weights else 1
        if len(tokens) % step:
            raise GraphFormatError(
                f"{path}: vertex {vertex + 1} has a dangling weight token"
            )
        for position in range(0, len(tokens), step):
            try:
                neighbor = int(tokens[position]) - 1  # METIS is 1-indexed
            except ValueError:
                raise GraphFormatError(
                    f"{path}: vertex {vertex + 1} has non-integer neighbor "
                    f"{tokens[position]!r}"
                ) from None
            if not 0 <= neighbor < n:
                raise GraphFormatError(
                    f"{path}: vertex {vertex + 1} lists neighbor "
                    f"{neighbor + 1} outside [1, {n}]"
                )
            if has_edge_weights:
                try:
                    weight = float(tokens[position + 1])
                except ValueError:
                    raise GraphFormatError(
                        f"{path}: vertex {vertex + 1} has bad edge weight "
                        f"{tokens[position + 1]!r}"
                    ) from None
                if not math.isfinite(weight) or weight < 0:
                    raise GraphFormatError(
                        f"{path}: vertex {vertex + 1} has non-finite or "
                        f"negative edge weight {tokens[position + 1]!r}"
                    )
            else:
                weight = 1.0
            us.append(vertex)
            vs.append(neighbor)
            ws.append(weight)
    edges = (
        np.stack([np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)], axis=1)
        if us
        else np.zeros((0, 2), dtype=np.int64)
    )
    # Both directions appear in METIS; the builder halves duplicate mass.
    graph = graph_from_edges(
        edges, weights=np.asarray(ws) / 2.0, num_vertices=n
    )
    if graph.num_edges != declared_edges:
        raise GraphFormatError(
            f"{path}: header declares {declared_edges} edges, found "
            f"{graph.num_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path: PathLike, weighted: bool = False) -> None:
    """Write the graph in METIS format (1-indexed adjacency lines)."""
    fmt = " 001" if weighted else ""
    with open(path, "w") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges}{fmt}\n")
        for v in range(graph.num_vertices):
            nbrs, wts = graph.neighborhood(v)
            if weighted:
                tokens = []
                for neighbor, weight in zip(nbrs.tolist(), wts.tolist()):
                    tokens.append(f"{neighbor + 1} {weight:g}")
                handle.write(" ".join(tokens) + "\n")
            else:
                handle.write(" ".join(str(u + 1) for u in nbrs.tolist()) + "\n")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Binary round-trip save (benchmark caching)."""
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        neighbors=graph.neighbors,
        weights=graph.weights,
        self_loops=graph.self_loops,
        node_weights=graph.node_weights,
        node_weight_sq=graph.node_weight_sq,
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    data = np.load(path)
    return CSRGraph(
        data["offsets"],
        data["neighbors"],
        data["weights"],
        self_loops=data["self_loops"],
        node_weights=data["node_weights"],
        node_weight_sq=data["node_weight_sq"],
        validate=False,
    )
