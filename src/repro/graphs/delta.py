"""Mutable delta overlay over an immutable :class:`CSRGraph`.

The dynamic subsystem (DESIGN.md §11) needs a graph that accepts edge
inserts/deletes/reweights without paying a full rebuild per update.  CSR
is the wrong shape for in-place structural mutation, so mutation is
staged: a :class:`DeltaOverlayGraph` holds an immutable base CSR plus a
dictionary of pending canonical ``(u < v) -> target weight`` entries
(weight ``0`` means "edge absent").  Reads (:meth:`edge_weight`) consult
the overlay first, then binary-search the base adjacency row.

:meth:`compact` folds the pending deltas into a fresh ``CSRGraph`` and
rebases the overlay on it:

* **reweight fast path** — when no edge is created or removed and no new
  vertex appeared, only the ``weights`` array changes: it is copied and
  patched in place at the searchsorted positions of both arc directions
  (O(m) copy, O(pending · log deg) patch, no re-sort);
* **structural path** — otherwise the base edge list is materialized,
  changed pairs are dropped, surviving pending pairs appended, and
  :func:`~repro.graphs.builders.graph_from_edges` rebuilds the CSR.

New vertex ids beyond the base simply grow ``n``; they join with unit
LambdaCC weight (``k_v = 1``, ``k_v^2 = 1``) and no self-loop, matching
every generator in :mod:`repro.graphs`.  ``graph.repairs`` provenance is
carried through compaction so ``stats_dict()["input_repairs"]`` survives
a dynamic session the same way it survives coarsening.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import UpdateError
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph


def base_edge_weight(graph: CSRGraph, u: int, v: int) -> float:
    """Weight of undirected edge ``{u, v}`` in ``graph`` (0.0 if absent).

    Binary-searches the (sorted) adjacency row of ``u``; falls back to a
    linear scan on the rare hand-built graph with unsorted rows.
    """
    n = graph.num_vertices
    if u >= n or v >= n:
        return 0.0
    nbrs, wts = graph.neighborhood(u)
    if nbrs.size == 0:
        return 0.0
    pos = int(np.searchsorted(nbrs, v))
    if pos < nbrs.size and nbrs[pos] == v:
        return float(wts[pos])
    hits = np.flatnonzero(nbrs == v)
    return float(wts[hits[0]]) if hits.size else 0.0


class DeltaOverlayGraph:
    """An immutable CSR base plus pending edge-weight deltas."""

    __slots__ = ("base", "_pending", "_num_vertices", "_structural")

    def __init__(self, base: CSRGraph) -> None:
        self.base = base
        #: canonical ``(min, max) -> target weight`` (0.0 = absent).
        self._pending: Dict[Tuple[int, int], float] = {}
        self._num_vertices = base.num_vertices
        self._structural = False

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Vertex count including staged (not-yet-compacted) growth."""
        return self._num_vertices

    @property
    def pending_count(self) -> int:
        """Number of distinct edges with a staged weight change."""
        return len(self._pending)

    @property
    def is_structural(self) -> bool:
        """True when compaction must rebuild the CSR (edge set or vertex
        count changed), false when the reweight fast path applies."""
        return self._structural or self._num_vertices != self.base.num_vertices

    def edge_weight(self, u: int, v: int) -> float:
        """Current weight of ``{u, v}`` under the overlay (0.0 if absent)."""
        if u == v:
            raise UpdateError(f"self-loop query on vertex {u}")
        key = (u, v) if u < v else (v, u)
        if key in self._pending:
            return self._pending[key]
        return base_edge_weight(self.base, u, v)

    # ------------------------------------------------------------------ #
    # Staged mutation
    # ------------------------------------------------------------------ #

    def ensure_vertex(self, v: int) -> None:
        """Grow the vertex space to include id ``v``."""
        if v < 0:
            raise UpdateError(f"negative vertex id {v}")
        if v >= self._num_vertices:
            self._num_vertices = v + 1

    def set_edge(self, u: int, v: int, weight: float) -> None:
        """Stage ``{u, v}``'s weight to ``weight`` (``0`` removes it)."""
        if u == v:
            raise UpdateError(f"self-loop update on vertex {u} is not allowed")
        if not np.isfinite(weight):
            raise UpdateError(f"non-finite edge weight {weight!r} for ({u}, {v})")
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        key = (u, v) if u < v else (v, u)
        existed = base_edge_weight(self.base, key[0], key[1]) != 0.0
        if weight == 0.0 or not existed:
            # Edge created or removed relative to the base: CSR topology
            # changes, the reweight fast path is off for this compaction.
            self._structural = True
        self._pending[key] = float(weight)

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def compact(self) -> CSRGraph:
        """Fold pending deltas into a fresh CSR and rebase on it."""
        if not self._pending and self._num_vertices == self.base.num_vertices:
            return self.base
        if self.is_structural:
            new_graph = self._rebuild()
        else:
            new_graph = self._patch_weights()
        if self.base.repairs is not None:
            new_graph.repairs = dict(self.base.repairs)
        self.base = new_graph
        self._pending = {}
        self._structural = False
        return new_graph

    def _patch_weights(self) -> CSRGraph:
        """Reweight fast path: same topology, patched ``weights`` copy."""
        base = self.base
        weights = base.weights.copy()
        for (u, v), w in self._pending.items():
            for src, dst in ((u, v), (v, u)):
                lo = int(base.offsets[src])
                row = base.neighbors[lo : base.offsets[src + 1]]
                pos = int(np.searchsorted(row, dst))
                if pos >= row.size or row[pos] != dst:
                    hits = np.flatnonzero(row == dst)
                    if not hits.size:  # pragma: no cover - guarded by set_edge
                        raise UpdateError(
                            f"reweight fast path lost edge ({src}, {dst})"
                        )
                    pos = int(hits[0])
                weights[lo + pos] = w
        return CSRGraph(
            base.offsets,
            base.neighbors,
            weights,
            self_loops=base.self_loops,
            node_weights=base.node_weights,
            node_weight_sq=base.node_weight_sq,
            validate=False,
        )

    def _rebuild(self) -> CSRGraph:
        """Structural path: merge base edge list with pending deltas."""
        base = self.base
        old_n = base.num_vertices
        n = self._num_vertices
        src, dst, wts = base.edge_list()
        if self._pending:
            changed = np.fromiter(
                (u * n + v for (u, v) in self._pending), dtype=np.int64,
                count=len(self._pending),
            )
            keep = ~np.isin(src * np.int64(n) + dst, changed)
            src, dst, wts = src[keep], dst[keep], wts[keep]
            live = [(u, v, w) for (u, v), w in self._pending.items() if w != 0.0]
            if live:
                add = np.asarray(live, dtype=np.float64)
                src = np.concatenate([src, add[:, 0].astype(np.int64)])
                dst = np.concatenate([dst, add[:, 1].astype(np.int64)])
                wts = np.concatenate([wts, add[:, 2]])
        grown = n - old_n
        node_weights = base.node_weights
        if grown:
            node_weights = np.concatenate(
                [node_weights, np.ones(grown, dtype=np.float64)]
            )
        new_graph = graph_from_edges(
            np.stack([src, dst], axis=1) if src.size else np.zeros((0, 2), np.int64),
            weights=wts,
            num_vertices=n,
            node_weights=node_weights,
        )
        new_graph.self_loops[:old_n] = base.self_loops
        new_graph.node_weight_sq[:old_n] = base.node_weight_sq
        if grown:
            new_graph.node_weight_sq[old_n:] = 1.0
        return new_graph
