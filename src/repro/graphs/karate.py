"""Zachary's karate club graph (34 vertices, 78 edges).

The paper uses this graph (reference [44]) to compare against the MATLAB
LambdaCC implementation, which cannot scale past hundreds of vertices
(Appendix C.1).  The edge list below is the canonical 0-indexed Zachary
data; :func:`karate_club_factions` returns the two-faction ground truth
from the club's split.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph

_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31),
    (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30),
    (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32),
    (3, 7), (3, 12), (3, 13),
    (4, 6), (4, 10),
    (5, 6), (5, 10), (5, 16),
    (6, 16),
    (8, 30), (8, 32), (8, 33),
    (9, 33),
    (13, 33),
    (14, 32), (14, 33),
    (15, 32), (15, 33),
    (18, 32), (18, 33),
    (19, 33),
    (20, 32), (20, 33),
    (22, 32), (22, 33),
    (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31),
    (25, 31),
    (26, 29), (26, 33),
    (27, 33),
    (28, 31), (28, 33),
    (29, 32), (29, 33),
    (30, 32), (30, 33),
    (31, 32), (31, 33),
    (32, 33),
]

_MR_HI_FACTION = frozenset(
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21}
)


def karate_club_graph() -> CSRGraph:
    """The unweighted karate club graph as a :class:`CSRGraph`."""
    return graph_from_edges(_KARATE_EDGES, num_vertices=34)


def karate_club_factions() -> np.ndarray:
    """Ground-truth faction labels (0 = Mr. Hi's club, 1 = the officer's)."""
    labels = np.ones(34, dtype=np.int64)
    labels[list(_MR_HI_FACTION)] = 0
    return labels
