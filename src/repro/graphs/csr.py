"""Undirected weighted graphs in CSR form, with LambdaCC vertex weights.

Layout
------
* ``offsets`` (int64, n+1) / ``neighbors`` (int64, 2m) / ``weights``
  (float64, 2m): both directions of every undirected edge, no self-loops;
* ``self_loops`` (float64, n): self-loop weight per vertex (one-directional
  weight; a compressed cluster's internal edge mass lands here);
* ``node_weights`` (float64, n): the LambdaCC vertex weights ``k_v``
  (Section 2; 1 for plain correlation clustering, degree for modularity);
* ``node_weight_sq`` (float64, n): sum of squared *original* vertex weights
  each vertex absorbed through compression (``k_v**2`` at level 0).

The ``node_weight_sq`` channel is what makes the LambdaCC objective exact
across coarsening levels: pairs of original vertices collapsed into one
compressed vertex contribute ``-lambda * (k_v^2 - node_weight_sq[v]) / 2``
to the penalty term, so ``objective(compressed, induced clustering) ==
objective(original, flattened clustering)`` exactly (property-tested).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError


class CSRGraph:
    """An undirected weighted graph in CSR form.

    Construct with :func:`repro.graphs.builders.graph_from_edges` rather
    than directly unless you already have validated CSR arrays.
    """

    __slots__ = (
        "offsets",
        "neighbors",
        "weights",
        "self_loops",
        "node_weights",
        "node_weight_sq",
        "repairs",
        "_integer_weights",
    )

    def __init__(
        self,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        weights: np.ndarray,
        self_loops: Optional[np.ndarray] = None,
        node_weights: Optional[np.ndarray] = None,
        node_weight_sq: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.neighbors = np.asarray(neighbors, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        n = self.offsets.size - 1
        if self_loops is None:
            self_loops = np.zeros(n, dtype=np.float64)
        if node_weights is None:
            node_weights = np.ones(n, dtype=np.float64)
        if node_weight_sq is None:
            node_weight_sq = np.asarray(node_weights, dtype=np.float64) ** 2
        self.self_loops = np.asarray(self_loops, dtype=np.float64)
        self.node_weights = np.asarray(node_weights, dtype=np.float64)
        self.node_weight_sq = np.asarray(node_weight_sq, dtype=np.float64)
        #: Input-repair counts attached by ``read_edge_list(...,
        #: on_malformed="repair")``; ``None`` for graphs built cleanly.
        self.repairs: Optional[dict] = None
        self._integer_weights: Optional[bool] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self.num_vertices
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise GraphFormatError("offsets must be a 1-D array of length n+1 >= 1")
        if self.offsets[0] != 0:
            raise GraphFormatError("offsets[0] must be 0")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if self.neighbors.shape != self.weights.shape:
            raise GraphFormatError("neighbors and weights must have equal length")
        if self.offsets[-1] != self.neighbors.size:
            raise GraphFormatError(
                f"offsets[-1]={self.offsets[-1]} != len(neighbors)={self.neighbors.size}"
            )
        for name, arr in (
            ("self_loops", self.self_loops),
            ("node_weights", self.node_weights),
            ("node_weight_sq", self.node_weight_sq),
        ):
            if arr.shape != (n,):
                raise GraphFormatError(f"{name} must have shape ({n},), got {arr.shape}")
        if self.neighbors.size:
            if self.neighbors.min() < 0 or self.neighbors.max() >= n:
                raise GraphFormatError("neighbor ids out of range")
            src = np.repeat(np.arange(n), np.diff(self.offsets))
            if np.any(src == self.neighbors):
                raise GraphFormatError(
                    "adjacency must not contain self-loops; use self_loops array"
                )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries, 2m."""
        return self.neighbors.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (excluding self-loops)."""
        return self.neighbors.size // 2

    @property
    def has_integer_weights(self) -> bool:
        """True when every edge weight is integer-valued (lazily cached).

        Integer-valued float64 sums (below 2**53) are exact under any
        addition order, which lets the vectorized move kernel use faster
        reductions without breaking bit-identity with the dict oracle
        (DESIGN.md §8).  Unit-weight graphs — every generator here — all
        qualify.
        """
        if self._integer_weights is None:
            self._integer_weights = bool(
                np.all(self.weights == np.trunc(self.weights))
            )
        return self._integer_weights

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets).astype(np.int64)

    def neighborhood(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of vertex ``v``'s (neighbors, edge weights)."""
        lo, hi = self.offsets[v], self.offsets[v + 1]
        return self.neighbors[lo:hi], self.weights[lo:hi]

    def weighted_degrees(self) -> np.ndarray:
        """``d_v = sum of incident edge weights + 2 * self_loop(v)``.

        The ``2x`` self-loop convention matches standard modularity, where a
        self-loop contributes twice to its endpoint's degree.
        """
        n = self.num_vertices
        sums = np.zeros(n, dtype=np.float64)
        if self.neighbors.size:
            src = np.repeat(np.arange(n), np.diff(self.offsets))
            np.add.at(sums, src, self.weights)
        return sums + 2.0 * self.self_loops

    @property
    def total_edge_weight(self) -> float:
        """Total undirected edge weight ``m_w`` including self-loops."""
        return float(self.weights.sum()) / 2.0 + float(self.self_loops.sum())

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def with_node_weights(
        self, node_weights: np.ndarray, node_weight_sq: Optional[np.ndarray] = None
    ) -> "CSRGraph":
        """A view-sharing copy with replaced LambdaCC vertex weights."""
        derived = CSRGraph(
            self.offsets,
            self.neighbors,
            self.weights,
            self_loops=self.self_loops,
            node_weights=np.asarray(node_weights, dtype=np.float64),
            node_weight_sq=node_weight_sq,
            validate=False,
        )
        if self.repairs is not None:
            derived.repairs = dict(self.repairs)
        return derived

    def with_unit_weights(self) -> "CSRGraph":
        """Copy treating every edge as weight 1 (the paper's unweighted
        treatment of weighted graphs, superscript-less variants)."""
        derived = CSRGraph(
            self.offsets,
            self.neighbors,
            np.ones_like(self.weights),
            self_loops=(self.self_loops > 0).astype(np.float64),
            node_weights=self.node_weights,
            node_weight_sq=self.node_weight_sq,
            validate=False,
        )
        if self.repairs is not None:
            derived.repairs = dict(self.repairs)
        return derived

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nbytes(self) -> int:
        """Bytes held by this graph's arrays (used for Figure 8)."""
        return int(
            self.offsets.nbytes
            + self.neighbors.nbytes
            + self.weights.nbytes
            + self.self_loops.nbytes
            + self.node_weights.nbytes
            + self.node_weight_sq.nbytes
        )

    def is_symmetric(self) -> bool:
        """Check every stored arc has its reverse with equal weight."""
        n = self.num_vertices
        src = np.repeat(np.arange(n), np.diff(self.offsets))
        fwd = np.lexsort((self.neighbors, src))
        rev = np.lexsort((src, self.neighbors))
        ok_ids = bool(
            np.array_equal(src[fwd], self.neighbors[rev])
            and np.array_equal(self.neighbors[fwd], src[rev])
        )
        if not ok_ids:
            return False
        return bool(np.allclose(self.weights[fwd], self.weights[rev]))

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Undirected edge list ``(u, v, w)`` with ``u < v`` (no self-loops)."""
        n = self.num_vertices
        src = np.repeat(np.arange(n), np.diff(self.offsets))
        keep = src < self.neighbors
        return src[keep], self.neighbors[keep], self.weights[keep]

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"total_weight={self.total_edge_weight:.6g})"
        )
