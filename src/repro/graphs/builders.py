"""Graph construction from edge lists.

:func:`graph_from_edges` is the single entry point: it symmetrizes,
deduplicates (summing weights of parallel edges, as the paper's compression
does), separates self-loops into the out-of-band channel, and emits a
validated :class:`~repro.graphs.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph

EdgeArray = Union[np.ndarray, Sequence[Tuple[int, int]]]


def _as_edge_arrays(
    edges: EdgeArray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(f"edges must have shape (m, 2), got {edges.shape}")
    if weights is None:
        w = np.ones(edges.shape[0], dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (edges.shape[0],):
            raise GraphFormatError(
                f"weights must have shape ({edges.shape[0]},), got {w.shape}"
            )
    return edges[:, 0], edges[:, 1], w


def graph_from_edges(
    edges: EdgeArray,
    weights: Optional[np.ndarray] = None,
    num_vertices: Optional[int] = None,
    node_weights: Optional[np.ndarray] = None,
    combine_duplicates: bool = True,
) -> CSRGraph:
    """Build an undirected :class:`CSRGraph` from an edge list.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer array (or sequence of pairs).  Edges are
        interpreted as undirected; both orientations may appear and are
        combined.
    weights:
        Optional per-edge weights (default 1).
    num_vertices:
        Vertex-count override (``max id + 1`` by default) so isolated
        trailing vertices survive.
    node_weights:
        Optional LambdaCC vertex weights ``k_v`` (default all-ones).
    combine_duplicates:
        Sum weights of duplicate edges (the compression semantics).  When
        False, duplicates raise :class:`GraphFormatError`.
    """
    u, v, w = _as_edge_arrays(edges, weights)
    if u.size and (u.min() < 0 or v.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    n = int(num_vertices) if num_vertices is not None else (
        int(max(u.max(initial=-1), v.max(initial=-1))) + 1 if u.size else 0
    )
    if u.size and max(u.max(), v.max()) >= n:
        raise GraphFormatError(
            f"num_vertices={n} too small for max vertex id {max(u.max(), v.max())}"
        )

    self_mask = u == v
    self_loops = np.zeros(n, dtype=np.float64)
    if self_mask.any():
        np.add.at(self_loops, u[self_mask], w[self_mask])
        u, v, w = u[~self_mask], v[~self_mask], w[~self_mask]

    # Canonicalize to u < v, then dedup.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    if lo.size:
        key = lo * np.int64(n) + hi
        unique_key, inverse, counts = np.unique(
            key, return_inverse=True, return_counts=True
        )
        if not combine_duplicates and np.any(counts > 1):
            raise GraphFormatError("duplicate edges present and combine_duplicates=False")
        summed = np.bincount(inverse, weights=w, minlength=unique_key.size)
        lo = (unique_key // n).astype(np.int64)
        hi = (unique_key % n).astype(np.int64)
        w = summed
    return _csr_from_canonical(n, lo, hi, w, self_loops, node_weights)


def _csr_from_canonical(
    n: int,
    lo: np.ndarray,
    hi: np.ndarray,
    w: np.ndarray,
    self_loops: np.ndarray,
    node_weights: Optional[np.ndarray],
) -> CSRGraph:
    """Assemble CSR arrays from a deduplicated ``u < v`` edge list."""
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    ww = np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    if src.size:
        counts = np.bincount(src, minlength=n)
        np.cumsum(counts, out=offsets[1:])
    return CSRGraph(
        offsets,
        dst,
        ww,
        self_loops=self_loops,
        node_weights=node_weights,
    )


def graph_from_adjacency(
    matrix: np.ndarray, node_weights: Optional[np.ndarray] = None
) -> CSRGraph:
    """Build a graph from a dense symmetric adjacency/weight matrix.

    Zero entries are non-edges; the diagonal populates ``self_loops``.
    Used by tests and by the dense LambdaCC baseline's fixtures.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphFormatError(f"adjacency must be square, got {matrix.shape}")
    if not np.allclose(matrix, matrix.T):
        raise GraphFormatError("adjacency must be symmetric")
    n = matrix.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    mask = matrix[iu, ju] != 0
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    graph = graph_from_edges(
        edges, weights=matrix[iu, ju][mask], num_vertices=n, node_weights=node_weights
    )
    graph.self_loops[:] = np.diag(matrix)
    return graph
