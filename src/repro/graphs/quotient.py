"""Graph compression (PARALLEL-COMPRESS / SEQUENTIAL-COMPRESS).

Compressing a clustering ``C`` of ``G`` produces ``G'`` whose vertices are
the clusters of ``C``: vertex weights accumulate (``k'(c) = K_c``), parallel
edges between cluster pairs combine into one edge with the summed weight,
and intra-cluster edge mass becomes a self-loop (Section 3.1).

Two cost models are provided over the same result:

* :func:`compress_graph` — the paper's work-efficient parallelization:
  edges aggregated by (cluster, cluster) key with a parallel semisort, in
  polylogarithmic depth (Appendix B / Section 4.2);
* :func:`compress_graph_naive` — a non-work-efficient aggregation modelling
  implementations (NetworKit's, per the paper) that lack the parallel-sort
  compression; used by the PLM baseline and the compression ablation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.parallel.sorting import naive_group_aggregate, parallel_semisort_aggregate


def _relabel_dense(assignments: np.ndarray) -> Tuple[np.ndarray, int]:
    """Map arbitrary cluster ids to ``[0, n')``; returns (map per vertex, n')."""
    unique, vertex_to_super = np.unique(assignments, return_inverse=True)
    return vertex_to_super.astype(np.int64), int(unique.size)


def _compress(
    graph: CSRGraph,
    assignments: np.ndarray,
    sched,
    work_efficient: bool,
) -> Tuple[CSRGraph, np.ndarray]:
    assignments = np.asarray(assignments, dtype=np.int64)
    n = graph.num_vertices
    if assignments.shape != (n,):
        raise ValueError(f"assignments must have shape ({n},), got {assignments.shape}")
    vertex_to_super, n_super = _relabel_dense(assignments)

    node_weights = np.bincount(
        vertex_to_super, weights=graph.node_weights, minlength=n_super
    )
    node_weight_sq = np.bincount(
        vertex_to_super, weights=graph.node_weight_sq, minlength=n_super
    )
    self_loops = np.bincount(
        vertex_to_super, weights=graph.self_loops, minlength=n_super
    )
    if sched is not None:
        sched.charge(work=float(3 * n), depth=np.log2(max(n, 2)), label="compress-nodes")

    if graph.num_directed_edges:
        # Semisort key construction: map each directed edge's endpoints to
        # super-vertex ids.  A non-inline execution backend (DESIGN.md §13)
        # shards this gather over real cores — a pure elementwise map, so
        # the shard concatenation is bit-identical to the inline path.
        backend = getattr(sched, "backend", None)
        if backend is not None and not backend.inline:
            csrc, cdst = backend.map_to_super(
                graph, vertex_to_super, instr=getattr(sched, "instr", None)
            )
        else:
            src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
            csrc = vertex_to_super[src]
            cdst = vertex_to_super[graph.neighbors]
        intra = csrc == cdst
        if intra.any():
            # Each undirected intra-cluster edge appears twice in the
            # directed arrays, so halve the directed sum.
            self_loops += (
                np.bincount(csrc[intra], weights=graph.weights[intra], minlength=n_super)
                / 2.0
            )
        keys = csrc[~intra] * np.int64(n_super) + cdst[~intra]
        weights = graph.weights[~intra]
        if work_efficient:
            unique_keys, sums = parallel_semisort_aggregate(
                keys, weights, sched=sched, label="compress-semisort"
            )
        else:
            unique_keys, sums = naive_group_aggregate(
                keys, weights, n_super, sched=sched, label="compress-naive"
            )
        new_src = (unique_keys // n_super).astype(np.int64)
        new_dst = (unique_keys % n_super).astype(np.int64)
        offsets = np.zeros(n_super + 1, dtype=np.int64)
        counts = np.bincount(new_src, minlength=n_super)
        np.cumsum(counts, out=offsets[1:])
        compressed = CSRGraph(
            offsets,
            new_dst,
            sums,
            self_loops=self_loops,
            node_weights=node_weights,
            node_weight_sq=node_weight_sq,
            validate=False,
        )
    else:
        offsets = np.zeros(n_super + 1, dtype=np.int64)
        compressed = CSRGraph(
            offsets,
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            self_loops=self_loops,
            node_weights=node_weights,
            node_weight_sq=node_weight_sq,
            validate=False,
        )
    if graph.repairs is not None:
        # Repair provenance rides the coarsening so multilevel runs keep
        # reporting stats_dict()["input_repairs"] at every level.
        compressed.repairs = dict(graph.repairs)
    return compressed, vertex_to_super


def compress_graph(
    graph: CSRGraph, assignments: np.ndarray, sched=None
) -> Tuple[CSRGraph, np.ndarray]:
    """Work-efficient PARALLEL-COMPRESS.

    Returns ``(compressed_graph, vertex_to_super)`` where
    ``vertex_to_super[v]`` is the compressed-vertex id of ``v``'s cluster.
    """
    return _compress(graph, assignments, sched, work_efficient=True)


def compress_graph_naive(
    graph: CSRGraph, assignments: np.ndarray, sched=None
) -> Tuple[CSRGraph, np.ndarray]:
    """Compression with the non-work-efficient aggregation cost model."""
    return _compress(graph, assignments, sched, work_efficient=False)
