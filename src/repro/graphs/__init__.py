"""Graph substrate: CSR graphs, builders, I/O, quotient compression.

Graphs are undirected and stored in compressed-sparse-row form with both
edge directions materialized (the layout GBBS and the paper's code use).
Self-loops — which arise from graph compression — are stored out-of-band in
a per-vertex array so adjacency scans during best-move computation never
see them.
"""

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.karate import karate_club_graph
from repro.graphs.quotient import compress_graph, compress_graph_naive
from repro.graphs.stats import graph_footprint_bytes

__all__ = [
    "CSRGraph",
    "compress_graph",
    "compress_graph_naive",
    "graph_footprint_bytes",
    "graph_from_edges",
    "karate_club_graph",
]
