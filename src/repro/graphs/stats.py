"""Graph statistics and memory-footprint accounting (Figure 8 substrate).

The paper reports memory as a multiple of the input graph's CSR size,
"approximately 8 bytes per undirected edge" (footnote 5).  We mirror both:
:func:`graph_footprint_bytes` for the paper-style input size and
:class:`MemoryTracker` for the algorithm's peak retained bytes (refinement
keeps every coarsened level alive; no-refinement keeps only the frontier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.graphs.csr import CSRGraph

#: Paper's convention: CSR size approximated at 8 bytes per undirected edge.
BYTES_PER_UNDIRECTED_EDGE = 8


def graph_footprint_bytes(graph: CSRGraph, paper_convention: bool = True) -> int:
    """Input-graph size.

    With ``paper_convention`` (default) uses the paper's 8-bytes-per-edge
    figure for the denominator of Figure 8; otherwise the actual array
    bytes of this implementation.
    """
    if paper_convention:
        return max(1, BYTES_PER_UNDIRECTED_EDGE * graph.num_edges)
    return graph.nbytes


@dataclass
class MemoryTracker:
    """Tracks peak retained graph bytes across coarsening levels."""

    current_bytes: int = 0
    peak_bytes: int = 0
    _held: Dict[int, int] = field(default_factory=dict)

    def hold(self, level: int, graph: CSRGraph) -> None:
        """Record that ``graph`` is retained for ``level``."""
        released = self._held.pop(level, 0)
        self.current_bytes -= released
        size = graph.nbytes
        self._held[level] = size
        self.current_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def release(self, level: int) -> None:
        """Record that ``level``'s graph was discarded."""
        self.current_bytes -= self._held.pop(level, 0)

    def overhead(self, input_bytes: int) -> float:
        """Peak retained bytes as a multiple of the input size."""
        return self.peak_bytes / max(1, input_bytes)


def degree_statistics(graph: CSRGraph) -> Dict[str, float]:
    """Summary degree stats used by dataset tables and benches."""
    degs = graph.degrees()
    if degs.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0}
    return {
        "min": float(degs.min()),
        "max": float(degs.max()),
        "mean": float(degs.mean()),
        "median": float(np.median(degs)),
    }


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Dense component label per vertex.

    Vectorized min-label propagation with pointer jumping (the standard
    parallel connectivity scheme): each pass pulls the minimum label across
    edges, then shortcuts label chains; converges in O(log n) passes on
    typical graphs.  Used by the Tectonic and SCD baselines.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if graph.num_directed_edges:
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
        dst = graph.neighbors
        while True:
            pulled = labels.copy()
            np.minimum.at(pulled, src, labels[dst])
            pulled = np.minimum(pulled, pulled[pulled])
            pulled = pulled[pulled]
            if np.array_equal(pulled, labels):
                break
            labels = pulled
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
