"""Graph transformations: induced subgraphs, component extraction, k-cores.

Utilities a downstream user of the clustering library reaches for when
preparing inputs (restrict to the giant component, peel low-degree
periphery) and when inspecting outputs (extract one cluster's subgraph).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import connected_components


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    input-graph vertex id of subgraph vertex ``i``.  Vertex weights,
    squared-weight mass, and self-loops carry over.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    n = graph.num_vertices
    if vertices.size and (vertices[0] < 0 or vertices[-1] >= n):
        raise ValueError("vertex ids out of range")
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[vertices] = np.arange(vertices.size, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    keep = (new_id[src] >= 0) & (new_id[graph.neighbors] >= 0) & (
        src < graph.neighbors
    )
    edges = np.stack([new_id[src[keep]], new_id[graph.neighbors[keep]]], axis=1)
    sub = graph_from_edges(
        edges,
        weights=graph.weights[keep],
        num_vertices=vertices.size,
        node_weights=graph.node_weights[vertices],
    )
    sub.self_loops[:] = graph.self_loops[vertices]
    sub.node_weight_sq[:] = graph.node_weight_sq[vertices]
    if graph.repairs is not None:
        # Input-repair provenance survives preprocessing, so a run on the
        # cleaned subgraph still reports stats_dict()["input_repairs"].
        sub.repairs = dict(graph.repairs)
    return sub, vertices


def cluster_subgraph(
    graph: CSRGraph, assignments: np.ndarray, cluster: int
) -> Tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of one cluster of a clustering."""
    members = np.flatnonzero(np.asarray(assignments) == cluster)
    if members.size == 0:
        raise ValueError(f"cluster {cluster} has no members")
    return induced_subgraph(graph, members)


def largest_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """The induced subgraph of the largest connected component."""
    labels = connected_components(graph)
    counts = np.bincount(labels)
    giant = int(np.argmax(counts))
    return induced_subgraph(graph, np.flatnonzero(labels == giant))


def k_core(graph: CSRGraph, k: int) -> Tuple[CSRGraph, np.ndarray]:
    """The maximal subgraph in which every vertex has degree >= k.

    Iterative peeling; returns an empty graph when no such core exists.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    alive = np.ones(graph.num_vertices, dtype=bool)
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
    )
    while True:
        live_edges = alive[src] & alive[graph.neighbors]
        degrees = np.bincount(
            src[live_edges], minlength=graph.num_vertices
        )
        peel = alive & (degrees < k)
        if not peel.any():
            break
        alive &= ~peel
        if not alive.any():
            break
    return induced_subgraph(graph, np.flatnonzero(alive))
