"""Supervision policies: retry schedule, watchdog deadlines, fallback ladder.

All three are plain frozen dataclasses so a supervised run is fully
described by values — the retry schedule is jitter-free and the ladder
order is a pure function of the configuration, which is what makes chaos
runs replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.engines import fallback_engine
from repro.errors import ConfigError
from repro.kernels import fallback_kernel
from repro.resilience.guards import RunBudget


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for one ladder rung.

    Backoff is exponential and jitter-free: retry ``i`` (1-based) sleeps
    ``min(backoff_cap, backoff_base * backoff_factor**(i-1))`` wall
    seconds.  Determinism matters more than thundering-herd avoidance
    here — one supervisor drives one run, and reproducible schedules make
    chaos matrices replayable.
    """

    #: Attempts per ladder rung before descending (>= 1).
    max_attempts_per_rung: int = 3
    #: Wall seconds slept before the first retry.
    backoff_base: float = 0.05
    #: Multiplier applied per subsequent retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff sleep.
    backoff_cap: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts_per_rung < 1:
            raise ConfigError(
                f"max_attempts_per_rung must be >= 1, got {self.max_attempts_per_rung}"
            )
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap < 0:
            raise ConfigError(f"backoff_cap must be >= 0, got {self.backoff_cap}")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based), in wall seconds."""
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (retry_index - 1),
        )


@dataclass(frozen=True)
class Watchdog:
    """Wall-clock deadlines enforced through the RunBudget guard hooks.

    ``run_deadline_seconds`` caps the whole supervised run (all attempts
    and rungs combined); ``level_deadline_seconds`` caps a single engine
    invocation (one level's best-moves or refine pass).  Both are
    cooperative: they fire at the next budget consultation point, mapped
    onto ``RunBudget.max_wall_seconds`` / ``max_level_wall_seconds``.
    """

    run_deadline_seconds: Optional[float] = None
    level_deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("run_deadline_seconds", "level_deadline_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")

    @property
    def enabled(self) -> bool:
        return (
            self.run_deadline_seconds is not None
            or self.level_deadline_seconds is not None
        )

    def expired(self, elapsed: float) -> bool:
        """Whether the whole-run deadline has already passed."""
        return (
            self.run_deadline_seconds is not None
            and elapsed >= self.run_deadline_seconds
        )

    def budget(self, elapsed: float) -> Optional[RunBudget]:
        """The deadline overlay for an attempt starting at ``elapsed``.

        The run deadline becomes a per-attempt wall budget of whatever
        time remains (so a single attempt cannot overshoot it), the level
        deadline maps straight onto ``max_level_wall_seconds``.
        """
        caps = {}
        if self.run_deadline_seconds is not None:
            remaining = self.run_deadline_seconds - elapsed
            caps["max_wall_seconds"] = max(remaining, 1e-9)
        if self.level_deadline_seconds is not None:
            caps["max_level_wall_seconds"] = self.level_deadline_seconds
        return RunBudget(**caps) if caps else None


@dataclass(frozen=True)
class Rung:
    """One step of the fallback ladder: executor overrides + strictness.

    ``kernel``/``engine``/``backend`` of ``None`` mean "keep what the
    caller asked for"; ``graceful=True`` runs the rung under non-strict
    resilience so audits resync instead of raising and budget stops
    flatten best-so-far.
    """

    name: str
    kernel: Optional[str] = None
    engine: Optional[str] = None
    backend: Optional[str] = None
    graceful: bool = False


class FallbackLadder:
    """Deterministic sequence of progressively more conservative rungs.

    The default ladder (cumulative — each rung keeps the substitutions of
    the rungs above it) is::

        as-configured -> simulated-backend -> reference-kernel
            -> sequential-engine -> graceful

    with the backend rung present only for the process backend (the
    process backend already degrades *itself* to inline execution on
    worker death mid-run; the rung covers failures raised before or
    around that self-healing, e.g. a poisoned pool at startup) and the
    kernel/engine rungs skipped when the run already sits at the bottom
    of that axis (reference kernel, sequential engine).
    """

    def __init__(self, rungs: Sequence[Rung]) -> None:
        if not rungs:
            raise ConfigError("a FallbackLadder needs at least one rung")
        self.rungs: List[Rung] = list(rungs)

    def __len__(self) -> int:
        return len(self.rungs)

    def names(self) -> List[str]:
        return [rung.name for rung in self.rungs]

    @classmethod
    def for_run(cls, config, engine: Optional[str] = None) -> "FallbackLadder":
        """The default ladder for ``cluster(graph, config, engine=engine)``."""
        rungs = [Rung("as-configured")]
        fb = "simulated" if config.backend != "simulated" else None
        if fb is not None:
            rungs.append(Rung(f"{fb}-backend", backend=fb))
        fk = fallback_kernel(config.kernel)
        if fk is not None:
            rungs.append(Rung(f"{fk}-kernel", kernel=fk, backend=fb))
        requested = engine
        if requested is None and not config.parallel:
            requested = "sequential"
        fe = fallback_engine(requested)
        if fe is not None:
            rungs.append(Rung(f"{fe}-engine", kernel=fk, engine=fe, backend=fb))
        rungs.append(
            Rung("graceful", kernel=fk, engine=fe, backend=fb, graceful=True)
        )
        return cls(rungs)
