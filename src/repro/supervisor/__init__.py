"""Self-healing supervised execution for clustering runs (DESIGN.md §10).

The :class:`RunSupervisor` wraps :func:`repro.core.api.cluster` in a
retry/fallback state machine::

    RUNNING --fault--> FAULTED --attempts left--> RETRYING --> RUNNING
       |                  |
       |                  +--rung exhausted--> FALLBACK --> RUNNING
       |                  +--everything exhausted--> DEGRADED (salvage)
       +--success--> DONE

Retries resume from the last good checkpoint (never a cold restart when a
checkpoint exists), the :class:`Watchdog` enforces per-level and whole-run
wall-clock deadlines through the existing
:class:`~repro.resilience.guards.RunBudget` hooks, and the
:class:`FallbackLadder` degrades the executor deterministically
(vectorized -> reference kernel, parallel engine -> sequential sweeps,
strict audit -> graceful resync).  Every decision lands in
``ClusterResult.failure_log`` and as ``repro_supervisor_*`` metrics/trace
events riding ``sched.instr``.
"""

from repro.supervisor.policy import FallbackLadder, RetryPolicy, Rung, Watchdog
from repro.supervisor.supervisor import (
    CheckpointRotation,
    RunSupervisor,
    supervise,
)

__all__ = [
    "CheckpointRotation",
    "FallbackLadder",
    "RetryPolicy",
    "Rung",
    "RunSupervisor",
    "Watchdog",
    "supervise",
]
