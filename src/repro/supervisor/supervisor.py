"""The run supervisor: retries, watchdogs, fallback ladder, salvage.

See the package docstring for the state machine.  The supervisor never
re-implements clustering semantics — it drives
:func:`repro.core.api.cluster` repeatedly, turning the resilience layer's
typed errors into recovery decisions:

* attempts on the upper rungs run under an internally *strict* policy
  with zero inner retries, so every transient fault, invariant violation,
  or deadline surfaces as an exception the supervisor can act on;
* each retry resumes from the newest good checkpoint (alternating
  two-slot rotation, so a corrupt latest checkpoint falls back to the
  previous one instead of a cold restart);
* the final ``graceful`` rung hands control back to the resilience
  layer's own absorb-and-degrade machinery;
* if even that fails, a salvage run (graceful, one-round budget) flattens
  the best-so-far clustering from the newest checkpoint and returns it
  explicitly marked ``degraded``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.config import ClusteringConfig
from repro.core.options import RunOptions
from repro.core.result import ClusterResult
from repro.errors import (
    BudgetExhausted,
    CheckpointError,
    InvariantViolation,
    ReproError,
    SupervisorExhausted,
    TransientFault,
    WatchdogTimeout,
)
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import (
    M_SUPERVISOR_ATTEMPTS,
    M_SUPERVISOR_BACKOFF,
    M_SUPERVISOR_FALLBACKS,
    M_SUPERVISOR_RETRIES,
    M_SUPERVISOR_WATCHDOG,
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from repro.resilience.context import ResiliencePolicy
from repro.resilience.guards import RunBudget, merge_budgets
from repro.supervisor.policy import FallbackLadder, RetryPolicy, Rung, Watchdog

#: Failures worth re-running from a checkpoint: injected transients and
#: state corruption (recovery-by-rerun is cheap when levels are
#: idempotent from a checkpoint).  Everything else either ends the run
#: (budgets) or is a programming error the supervisor must not mask.
_RETRYABLE = (TransientFault, InvariantViolation)

_REASONS = {
    TransientFault: "transient-fault",
    InvariantViolation: "invariant-violation",
    WatchdogTimeout: "watchdog",
    CheckpointError: "checkpoint-corrupt",
}

#: Default cap on checkpoint I/O as a fraction of run wall time (see
#: ``ResiliencePolicy.checkpoint_budget_fraction``).  This is what keeps
#: the supervisor's no-fault overhead under the <3% budget: short runs
#: never amortize a write so they skip checkpointing entirely, long runs
#: spend at most ~2% of wall on it.
DEFAULT_CHECKPOINT_FRACTION = 0.02


def _reason(exc: Exception) -> str:
    for kind, label in _REASONS.items():
        if isinstance(exc, kind):
            return label
    return type(exc).__name__


class CheckpointRotation:
    """Two alternating checkpoint slots with a recency order.

    Each attempt writes into its own slot (never overwriting the newest
    good checkpoint from the previous attempt); :meth:`latest` is the
    resume candidate and :meth:`drop_latest` discards it when it turns
    out to be corrupt, exposing the previous good one.
    """

    SLOT_NAMES = ("ckpt-a.npz", "ckpt-b.npz")

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self._slots = [self.directory / name for name in self.SLOT_NAMES]
        self._next = 0
        self._history: List[Path] = []  # oldest first, newest last
        self._active: Optional[Path] = None
        self._active_stamp: Optional[int] = None

    @staticmethod
    def _stamp(path: Path) -> Optional[int]:
        try:
            return path.stat().st_mtime_ns
        except OSError:
            return None

    def begin_attempt(self) -> Path:
        """The slot the next attempt should checkpoint into."""
        self._active = self._slots[self._next]
        self._next = 1 - self._next
        self._active_stamp = self._stamp(self._active)
        return self._active

    def end_attempt(self) -> bool:
        """Record whether the attempt left a new checkpoint in its slot."""
        slot, stamp = self._active, self._active_stamp
        self._active = None
        self._active_stamp = None
        if slot is None:
            return False
        current = self._stamp(slot)
        if current is None or current == stamp:
            return False
        if slot in self._history:
            self._history.remove(slot)
        self._history.append(slot)
        return True

    def latest(self) -> Optional[Path]:
        return self._history[-1] if self._history else None

    def drop_latest(self) -> Optional[Path]:
        return self._history.pop() if self._history else None


class _RunDeadline(Exception):
    """Internal: the whole-run watchdog deadline passed (go salvage)."""


class _SalvageNow(Exception):
    """Internal: skip the remaining rungs and salvage (caller budget)."""


class _LadderExhausted(Exception):
    """Internal: every rung failed (go salvage)."""

    def __init__(self, cause: Exception) -> None:
        super().__init__(str(cause))
        self.cause = cause


class RunSupervisor:
    """Supervised execution of clustering jobs (see module docstring).

    ``clock``/``sleep`` are injectable for tests and chaos runs (a chaos
    matrix should not serve real backoff sleeps).
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        watchdog: Optional[Watchdog] = None,
        ladder: Optional[FallbackLadder] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_fraction: float = DEFAULT_CHECKPOINT_FRACTION,
        clock=time.perf_counter,
        sleep=time.sleep,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self.ladder = ladder
        self.checkpoint_dir = checkpoint_dir
        #: Checkpoint I/O throttle applied to every attempt (0 = write at
        #: every level boundary; tests use 0 to force eager checkpoints).
        self.checkpoint_fraction = checkpoint_fraction
        self._clock = clock
        self._sleep = sleep

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        config: ClusteringConfig,
        resilience: Optional[ResiliencePolicy] = None,
        instrumentation: Optional[Instrumentation] = None,
        engine: Optional[str] = None,
    ) -> ClusterResult:
        """Cluster ``graph`` under supervision; same contract as ``cluster``.

        The returned result additionally carries the supervisor's decision
        log (prepended to ``failure_log``) and an ``extras["supervisor"]``
        summary; a salvaged run is always ``degraded=True``.
        """
        instr = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        base = resilience if resilience is not None else ResiliencePolicy()
        ladder = (
            self.ladder
            if self.ladder is not None
            else FallbackLadder.for_run(config, engine=engine)
        )
        state = _RunState(start=self._clock())
        with instr.span(
            "supervise",
            rungs=",".join(r.name for r in ladder.rungs),
            max_attempts=self.retry.max_attempts_per_rung,
        ) as span:
            if self.checkpoint_dir is not None:
                result = self._drive(
                    graph, config, base, engine, ladder,
                    CheckpointRotation(self.checkpoint_dir), instr, state,
                )
            else:
                with tempfile.TemporaryDirectory(prefix="repro-supervisor-") as tmp:
                    result = self._drive(
                        graph, config, base, engine, ladder,
                        CheckpointRotation(tmp), instr, state,
                    )
            span.set(
                attempts=state.attempts,
                retries=state.retries,
                fallbacks=state.fallbacks,
                watchdog_fires=state.watchdog_fires,
                rung=state.final_rung,
                salvaged=state.salvaged,
                degraded=result.degraded,
            )
        return result

    # ------------------------------------------------------------------
    # the drive loop
    # ------------------------------------------------------------------
    def _drive(
        self, graph, config, base, engine, ladder, rotation, instr, state
    ) -> ClusterResult:
        resume = Path(base.resume_from) if base.resume_from else None
        try:
            result, resume = self._try_ladder(
                graph, config, base, engine, ladder, rotation, instr, state, resume
            )
        except _RunDeadline:
            state.watchdog_fires += 1
            instr.count(M_SUPERVISOR_WATCHDOG, 1.0, scope="run")
            self._note(
                state, instr,
                f"watchdog: run deadline "
                f"({self.watchdog.run_deadline_seconds:g}s) exceeded; salvaging",
                kind="watchdog",
            )
            result = self._salvage(
                graph, config, base, engine, rotation, instr, state
            )
        except _SalvageNow:
            result = self._salvage(
                graph, config, base, engine, rotation, instr, state
            )
        except _LadderExhausted as exc:
            self._note(
                state, instr,
                f"all {len(ladder)} rungs exhausted ({exc.cause}); salvaging",
                kind="ladder-exhausted",
            )
            result = self._salvage(
                graph, config, base, engine, rotation, instr, state
            )
        return self._finalize(result, state)

    def _try_ladder(
        self, graph, config, base, engine, ladder, rotation, instr, state, resume
    ) -> Tuple[ClusterResult, Optional[Path]]:
        from repro.core.api import cluster  # deferred: api imports us lazily too

        last_error: Exception = SupervisorExhausted("no attempt ran")
        for rung_index, rung in enumerate(ladder.rungs):
            if rung_index > 0:
                state.fallbacks += 1
                instr.count(M_SUPERVISOR_FALLBACKS, 1.0, rung=rung.name)
                self._note(
                    state, instr,
                    f"falling back to rung {rung.name!r} after {last_error}",
                    kind="fallback", rung=rung.name,
                )
            attempt = 0
            while attempt < self.retry.max_attempts_per_rung:
                attempt += 1
                elapsed = self._clock() - state.start
                if self.watchdog.expired(elapsed):
                    raise _RunDeadline()
                slot = rotation.begin_attempt()
                run_config, run_engine, policy = self._rung_setup(
                    rung, config, base, engine, resume, slot, elapsed
                )
                state.attempts += 1
                state.final_rung = rung.name
                instr.count(M_SUPERVISOR_ATTEMPTS, 1.0, rung=rung.name)
                instr.event(
                    "supervisor", kind="attempt", rung=rung.name,
                    attempt=attempt, resume=str(resume) if resume else "",
                )
                try:
                    result = cluster(
                        graph, run_config,
                        RunOptions(
                            resilience=policy, instrumentation=instr,
                            engine=run_engine,
                        ),
                    )
                except CheckpointError as exc:
                    rotation.end_attempt()
                    last_error = exc
                    if resume is not None and resume == rotation.latest():
                        rotation.drop_latest()
                    previous = rotation.latest()
                    self._note(
                        state, instr,
                        f"checkpoint {resume} unusable ({exc}); "
                        + (f"falling back to {previous}" if previous
                           else "restarting cold"),
                        kind="checkpoint-corrupt",
                    )
                    resume = previous
                    state.retries += 1
                    instr.count(
                        M_SUPERVISOR_RETRIES, 1.0, reason="checkpoint-corrupt"
                    )
                    continue
                except WatchdogTimeout as exc:
                    resume = self._resume_after(rotation, resume)
                    last_error = exc
                    state.watchdog_fires += 1
                    instr.count(M_SUPERVISOR_WATCHDOG, 1.0, scope="level")
                    self._note(
                        state, instr,
                        f"rung {rung.name!r}: {exc}; descending the ladder",
                        kind="watchdog",
                    )
                    break  # a deterministic hang will hang again: next rung
                except BudgetExhausted as exc:
                    resume = self._resume_after(rotation, resume)
                    if self.watchdog.expired(self._clock() - state.start):
                        raise _RunDeadline() from exc
                    # The caller's own budget, not a fault: strict callers
                    # get the error, graceful callers get best-so-far.
                    if base.strict:
                        raise
                    self._note(
                        state, instr,
                        f"caller budget exhausted ({exc}); salvaging best-so-far",
                        kind="budget",
                    )
                    raise _SalvageNow() from exc
                except _RETRYABLE as exc:
                    resume = self._resume_after(rotation, resume)
                    last_error = exc
                    if attempt >= self.retry.max_attempts_per_rung:
                        break
                    delay = self.retry.delay(attempt)
                    state.retries += 1
                    instr.count(M_SUPERVISOR_RETRIES, 1.0, reason=_reason(exc))
                    instr.observe(M_SUPERVISOR_BACKOFF, delay)
                    self._note(
                        state, instr,
                        f"rung {rung.name!r} attempt {attempt}/"
                        f"{self.retry.max_attempts_per_rung} failed "
                        f"({_reason(exc)}: {exc}); backing off {delay:g}s and "
                        + (f"resuming from {resume}" if resume
                           else "restarting cold"),
                        kind="retry",
                    )
                    self._sleep(delay)
                else:
                    self._resume_after(rotation, resume)
                    if state.attempts > 1 or rung_index > 0:
                        self._note(
                            state, instr,
                            f"recovered on rung {rung.name!r} "
                            f"(attempt {state.attempts} overall)",
                            kind="recovered",
                        )
                    return result, resume
        raise _LadderExhausted(last_error)

    # ------------------------------------------------------------------
    # per-attempt assembly
    # ------------------------------------------------------------------
    def _rung_setup(
        self, rung: Rung, config, base, engine, resume, slot, elapsed
    ):
        overrides = {}
        if rung.kernel is not None:
            overrides["kernel"] = rung.kernel
        if rung.backend is not None:
            overrides["backend"] = rung.backend
        run_config = config.with_options(**overrides) if overrides else config
        run_engine = rung.engine if rung.engine is not None else engine
        budget = merge_budgets(base.budget, self.watchdog.budget(elapsed))
        policy = replace(
            base,
            budget=budget,
            # Upper rungs run strict with zero inner retries so faults
            # surface here; the graceful rung restores the caller's own
            # absorb-and-degrade semantics.
            strict=False if rung.graceful else True,
            max_retries=base.max_retries if rung.graceful else 0,
            checkpoint_path=str(slot),
            checkpoint_budget_fraction=self.checkpoint_fraction,
            resume_from=str(resume) if resume is not None else None,
        )
        return run_config, run_engine, policy

    @staticmethod
    def _resume_after(rotation, resume) -> Optional[Path]:
        """The resume candidate after an attempt: its checkpoint if it
        wrote one, otherwise whatever we resumed from before."""
        rotation.end_attempt()
        return rotation.latest() or resume

    # ------------------------------------------------------------------
    # salvage
    # ------------------------------------------------------------------
    def _salvage(
        self, graph, config, base, engine, rotation, instr, state
    ) -> ClusterResult:
        from repro.core.api import cluster

        resume = rotation.latest()
        state.salvaged = True
        state.final_rung = "salvage"
        instr.count(M_SUPERVISOR_ATTEMPTS, 1.0, rung="salvage")
        self._note(
            state, instr,
            "salvage: graceful one-round run "
            + (f"from {resume}" if resume else "from scratch")
            + " to flatten best-so-far",
            kind="salvage",
        )
        policy = replace(
            base,
            budget=merge_budgets(base.budget, RunBudget(max_rounds=1)),
            strict=False,
            max_retries=max(base.max_retries, 1),
            checkpoint_path=None,
            resume_from=str(resume) if resume is not None else None,
        )
        try:
            result = cluster(
                graph, config,
                RunOptions(
                    resilience=policy, instrumentation=instr, engine=engine,
                ),
            )
        except CheckpointError:
            # Even the salvage checkpoint is bad: last resort, cold.
            rotation.drop_latest()
            policy = replace(policy, resume_from=None)
            try:
                result = cluster(
                    graph, config,
                    RunOptions(
                        resilience=policy, instrumentation=instr,
                        engine=engine,
                    ),
                )
            except ReproError as exc:
                raise SupervisorExhausted(
                    f"salvage run failed after ladder exhaustion: {exc}"
                ) from exc
        except ReproError as exc:
            raise SupervisorExhausted(
                f"salvage run failed after ladder exhaustion: {exc}"
            ) from exc
        result.degraded = True
        return result

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _note(self, state, instr, message: str, kind: str, **attrs) -> None:
        state.log.append(f"supervisor: {message}")
        instr.event("supervisor", kind=kind, message=message, **attrs)

    def _finalize(self, result: ClusterResult, state) -> ClusterResult:
        result.failure_log = state.log + result.failure_log
        result.extras["supervisor"] = {
            "attempts": state.attempts,
            "retries": state.retries,
            "fallbacks": state.fallbacks,
            "watchdog_fires": state.watchdog_fires,
            "rung": state.final_rung,
            "salvaged": state.salvaged,
        }
        return result


class _RunState:
    """Mutable per-run counters + decision log (one instance per run)."""

    __slots__ = (
        "start", "attempts", "retries", "fallbacks",
        "watchdog_fires", "salvaged", "final_rung", "log",
    )

    def __init__(self, start: float) -> None:
        self.start = start
        self.attempts = 0
        self.retries = 0
        self.fallbacks = 0
        self.watchdog_fires = 0
        self.salvaged = False
        self.final_rung = ""
        self.log: List[str] = []


def supervise(
    graph: CSRGraph,
    config: Optional[ClusteringConfig] = None,
    resilience: Optional[ResiliencePolicy] = None,
    instrumentation: Optional[Instrumentation] = None,
    engine: Optional[str] = None,
    **kwargs,
) -> ClusterResult:
    """One-shot convenience: ``RunSupervisor(**kwargs).run(...)``."""
    supervisor = RunSupervisor(**kwargs)
    return supervisor.run(
        graph,
        config if config is not None else ClusteringConfig(),
        resilience=resilience,
        instrumentation=instrumentation,
        engine=engine,
    )
