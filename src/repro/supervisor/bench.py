"""Supervisor overhead suite: supervision must be ~free when nothing fails.

ISSUE 6's contract: a :class:`~repro.supervisor.RunSupervisor` wrapped
around a fault-free run costs <3% wall clock over the same run
unsupervised.  Two mechanisms make that hold:

* checkpoint writes are throttled by ``checkpoint_budget_fraction`` (the
  supervisor defaults it to 2% of run wall), so short runs skip
  checkpointing entirely and long runs amortize it;
* everything else on the no-fault path is bookkeeping — one tempdir, one
  span, one strict :class:`~repro.resilience.context.ResiliencePolicy`.

Supervision must also never change the answer when nothing fails: the
clustering, objective, and simulated parallel cost are asserted
bit-identical against the unsupervised run.
"""

from __future__ import annotations

from repro.obs.bench import BASELINE_RESOLUTION, BenchSuite, time_callable

#: Design target for no-fault supervised overhead (ISSUE 6 acceptance).
SUPERVISED_TARGET = 0.03


def overhead_suite(repeats: int = 5) -> BenchSuite:
    """Supervised-vs-bare wall clock on a planted-partition workload."""
    import numpy as np

    from repro.core.api import cluster
    from repro.core.config import ClusteringConfig
    from repro.core.options import RunOptions
    from repro.generators.planted import planted_partition_graph
    from repro.supervisor import RunSupervisor

    graph = planted_partition_graph(
        num_vertices=2000, intra_degree=8.0, inter_degree=1.0, seed=0
    ).graph
    config = ClusteringConfig(resolution=BASELINE_RESOLUTION, seed=7)

    base_result, base_timing = time_callable(
        lambda: cluster(graph, config), repeats=repeats, warmup=1
    )
    supervised_result, supervised_timing = time_callable(
        lambda: cluster(
            graph, config, RunOptions(supervisor=RunSupervisor())
        ),
        repeats=repeats,
        warmup=1,
    )
    meta = supervised_result.extras.get("supervisor", {})

    suite = BenchSuite(
        "supervisor-overhead",
        meta={
            "workload": "planted(n=2000, intra=8, inter=1, seed=0)",
            "resolution": BASELINE_RESOLUTION,
            "repeats": repeats,
        },
    )
    suite.add_row(
        "baseline",
        metrics={"sim_time_seconds": base_result.sim_time()},
        wall_seconds=base_timing.best,
    )
    suite.add_row(
        "supervised",
        metrics={"slowdown": supervised_timing.best / base_timing.best},
        wall_seconds=supervised_timing.best,
        identical=bool(
            np.array_equal(
                supervised_result.assignments, base_result.assignments
            )
            and supervised_result.objective == base_result.objective
        ),
        sim_identical=supervised_result.sim_time() == base_result.sim_time(),
        attempts=int(meta.get("attempts", 0)),
        rung=str(meta.get("rung", "")),
        degraded=bool(supervised_result.degraded),
    )
    return suite
