"""Vertex subsets with sparse/dense dual representation (GBBS vertexSubset).

GBBS's EDGEMAP "switches between a sparse and a dense representation of the
subset depending on size" (Appendix B).  A :class:`VertexSubset` stores
either the member ids (sparse) or a boolean mask over all vertices (dense)
and converts lazily; :func:`should_densify` implements the standard
Ligra/GBBS switching rule.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Ligra's dense-direction threshold: go dense when the frontier plus its
#: out-degree sum exceeds |E| / DENSE_FRACTION.
DENSE_FRACTION = 20


def should_densify(frontier_size: int, frontier_degree_sum: int, num_edges: int) -> bool:
    """Ligra/GBBS direction heuristic for EDGEMAP."""
    return (frontier_size + frontier_degree_sum) > max(1, num_edges // DENSE_FRACTION)


class VertexSubset:
    """A subset of ``[0, n)`` with sparse ids or a dense membership mask."""

    def __init__(
        self,
        n: int,
        ids: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        if (ids is None) == (mask is None):
            raise ValueError("provide exactly one of ids= or mask=")
        self.n = int(n)
        self._ids = None if ids is None else np.asarray(ids, dtype=np.int64)
        self._mask = None if mask is None else np.asarray(mask, dtype=bool)
        if self._mask is not None and self._mask.shape != (self.n,):
            raise ValueError(f"mask shape {self._mask.shape} != ({self.n},)")
        if self._ids is not None and self._ids.size:
            if self._ids.min() < 0 or self._ids.max() >= self.n:
                raise ValueError("vertex ids out of range")

    @staticmethod
    def empty(n: int) -> "VertexSubset":
        return VertexSubset(n, ids=np.zeros(0, dtype=np.int64))

    @staticmethod
    def full(n: int) -> "VertexSubset":
        return VertexSubset(n, mask=np.ones(n, dtype=bool))

    @staticmethod
    def from_ids(n: int, ids: np.ndarray, sched=None) -> "VertexSubset":
        """Sparse subset from (possibly unsorted, possibly duplicated) ids.

        When a scheduler with enabled instrumentation is passed, the
        duplicate fraction removed here — the EDGEMAP dedup hit rate — is
        observed (observe-only; the dedup's cost is charged by callers).
        """
        raw = np.asarray(ids, dtype=np.int64)
        unique = np.unique(raw)
        if sched is not None and raw.size:
            instr = getattr(sched, "instr", None)
            if instr is not None and instr.enabled:
                from repro.obs.instrument import M_DEDUP_HITS, M_DEDUP_RATE

                hits = int(raw.size - unique.size)
                if hits:
                    instr.count(M_DEDUP_HITS, float(hits))
                instr.observe(M_DEDUP_RATE, hits / raw.size)
        return VertexSubset(n, ids=unique)

    @property
    def is_dense(self) -> bool:
        return self._mask is not None

    def __len__(self) -> int:
        if self._ids is not None:
            return int(self._ids.size)
        return int(self._mask.sum())

    def __contains__(self, v: int) -> bool:
        if self._mask is not None:
            return bool(self._mask[v])
        return bool(np.any(self._ids == v))

    def ids(self) -> np.ndarray:
        """Sorted member ids (computes from the mask when dense)."""
        if self._ids is None:
            self._ids = np.flatnonzero(self._mask).astype(np.int64)
        return self._ids

    def mask(self) -> np.ndarray:
        """Dense boolean membership mask (computes from ids when sparse)."""
        if self._mask is None:
            self._mask = np.zeros(self.n, dtype=bool)
            self._mask[self._ids] = True
        return self._mask

    def union(self, other: "VertexSubset") -> "VertexSubset":
        if self.n != other.n:
            raise ValueError("subsets over different vertex ranges")
        if self.is_dense or other.is_dense:
            return VertexSubset(self.n, mask=self.mask() | other.mask())
        merged = np.union1d(self.ids(), other.ids())
        return VertexSubset(self.n, ids=merged)
