"""Union-find (disjoint set union) with path compression + union by size.

A second connectivity substrate next to the label-propagation
connected-components in :mod:`repro.graphs.stats`: union-find is the
natural engine for incremental merging (used by tests as an independent
oracle for the connectivity-dependent baselines and for the Leiden
well-connectedness checks).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


class UnionFind:
    """Array-based DSU over ``n`` elements."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.num_components = n

    def find(self, x: int) -> int:
        """Root of ``x``'s set, with path compression."""
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        # Compress the walked path.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_labels(self) -> np.ndarray:
        """Dense component label per element."""
        roots = np.asarray([self.find(i) for i in range(self.parent.size)])
        _, dense = np.unique(roots, return_inverse=True)
        return dense.astype(np.int64)


def connected_components_uf(graph: CSRGraph) -> np.ndarray:
    """Connected components via union-find (oracle for the vectorized
    label-propagation version in :mod:`repro.graphs.stats`)."""
    uf = UnionFind(graph.num_vertices)
    u, v, _ = graph.edge_list()
    for a, b in zip(u.tolist(), v.tolist()):
        uf.union(a, b)
    return uf.component_labels()
