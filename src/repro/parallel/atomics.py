"""Atomic-update contention accounting.

The paper's asynchronous setting replaces locks with separate atomic
operations: one CAS to update a vertex's cluster id and fetch-and-adds on
the source and destination clusters' total vertex weights (Section 3.2.1).
When many vertices move into the same cluster within one concurrency
window, those fetch-and-adds queue on a single cache line — the effect the
paper identifies as the cause of poor PAR-MOD scaling on twitter
(Appendix C: average cluster size up to 2.08e7).

This module computes, for a batch of concurrent updates, the per-location
queue lengths used by :meth:`SimulatedScheduler.charge_cas_contention`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def contention_profile(targets: np.ndarray) -> Tuple[np.ndarray, int]:
    """Queue lengths for a window of concurrent atomic updates.

    Parameters
    ----------
    targets:
        Integer array; ``targets[i]`` is the memory location (cluster id)
        the ``i``-th concurrent update hits.

    Returns
    -------
    (queue_lengths, max_queue):
        ``queue_lengths`` holds the number of concurrent updates per
        distinct contended location (length = number of distinct targets);
        ``max_queue`` is its maximum (0 for an empty window).
    """
    targets = np.asarray(targets)
    if targets.size == 0:
        return np.zeros(0, dtype=np.int64), 0
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D, got shape {targets.shape}")
    _, counts = np.unique(targets, return_counts=True)
    return counts.astype(np.int64), int(counts.max())


def atomic_add_window(
    values: np.ndarray,
    targets: np.ndarray,
    deltas: np.ndarray,
    sched=None,
    label: str = "atomic-add",
) -> None:
    """Apply one window of concurrent ``values[targets] += deltas`` updates.

    The updates are applied exactly (fetch-and-add never loses increments);
    what contention costs is *time*, which is charged to ``sched``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=values.dtype)
    if targets.shape != deltas.shape:
        raise ValueError(
            f"targets {targets.shape} and deltas {deltas.shape} must match"
        )
    np.add.at(values, targets, deltas)
    if sched is not None:
        queues, _ = contention_profile(targets)
        sched.charge(
            work=float(targets.size), depth=1.0, label=label,
            items=int(targets.size),
        )
        instr = getattr(sched, "instr", None)
        if instr is not None and instr.enabled:
            # Every update in the window issues one atomic RMW; retries on
            # top of these are counted by charge_cas_contention below.
            from repro.obs.instrument import M_CAS_ATTEMPTS

            instr.count(M_CAS_ATTEMPTS, float(targets.size), site=label)
        sched.charge_cas_contention(queues, label=label + "-contention")
        faults = getattr(sched, "faults", None)
        if faults is not None:
            # Injected CAS failures: each failed update retries once more,
            # paying an extra contended-RMW round trip.  Values stay exact
            # (fetch-and-add never loses increments); the hazard is time.
            failures = faults.cas_failures(targets.size)
            if failures:
                sched.charge_cas_contention(
                    [failures + 1], label=label + "-injected-cas"
                )
