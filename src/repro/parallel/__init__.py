"""Simulated shared-memory parallel runtime.

The paper runs on 30- and 48-core machines with a work-stealing scheduler
(ParlayLib/GBBS).  CPython's GIL rules out genuine shared-memory parallelism,
so this package provides a *simulated* runtime instead: algorithms execute
sequentially (vectorized with numpy) while charging their parallel cost —
work, depth (span), and atomic contention — to a :class:`CostLedger`.
Simulated wall-clock for ``P`` workers follows a Brent-style bound

    T(P) = sum over regions of  work / eff(P) + depth * (1 + tau) + serial,

where ``eff(P)`` models two-way hyper-threading and ``serial`` captures
compare-and-swap queueing on hot memory locations.  DESIGN.md section 2
documents why this substitution preserves the paper's scalability *shapes*.

Components mirror the GBBS primitives the paper relies on:

* :mod:`repro.parallel.scheduler` — cost ledger + machine model;
* :mod:`repro.parallel.atomics` — CAS/fetch-add contention accounting;
* :mod:`repro.parallel.primitives` — reduce / scan / pack / histogram;
* :mod:`repro.parallel.sorting` — work-efficient parallel (sample) sort;
* :mod:`repro.parallel.hash_table` — parallel hash-table aggregation;
* :mod:`repro.parallel.vertex_subset` / :mod:`repro.parallel.edge_map` —
  GBBS's EDGEMAP with sparse/dense representation switching.
"""

from repro.parallel.atomics import contention_profile
from repro.parallel.edge_map import edge_map
from repro.parallel.scheduler import CostLedger, Machine, SimulatedScheduler
from repro.parallel.union_find import UnionFind
from repro.parallel.vertex_subset import VertexSubset

__all__ = [
    "CostLedger",
    "Machine",
    "SimulatedScheduler",
    "UnionFind",
    "VertexSubset",
    "contention_profile",
    "edge_map",
]
