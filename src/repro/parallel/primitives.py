"""Work-efficient parallel primitives (reduce, scan, pack, histogram).

Each primitive executes vectorized with numpy and charges the theoretical
(work, depth) of its parallel counterpart to the scheduler: linear work and
logarithmic depth, matching the ParlayLib/GBBS primitives the paper builds
on (Appendix B).  ``sched=None`` skips accounting.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np


def _log2(n: int) -> float:
    """Depth helper: log2 clamped to at least 1 for tiny inputs."""
    return max(1.0, math.log2(max(n, 2)))


def parallel_reduce(values: np.ndarray, sched=None, label: str = "reduce") -> float:
    """Sum-reduce ``values``; work O(n), depth O(log n)."""
    values = np.asarray(values)
    total = float(values.sum())
    if sched is not None:
        sched.charge(work=float(values.size), depth=_log2(values.size), label=label)
    return total


def parallel_max(values: np.ndarray, sched=None, label: str = "max") -> float:
    """Max-reduce ``values``; work O(n), depth O(log n)."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("parallel_max of empty array")
    result = float(values.max())
    if sched is not None:
        sched.charge(work=float(values.size), depth=_log2(values.size), label=label)
    return result


def parallel_scan(
    values: np.ndarray, sched=None, label: str = "scan"
) -> Tuple[np.ndarray, float]:
    """Exclusive prefix sum; returns (prefix array, total).

    Work O(n), depth O(log n) — the classic two-phase Blelloch scan.
    """
    values = np.asarray(values)
    prefix = np.zeros(values.size, dtype=np.int64 if values.dtype.kind in "iu" else np.float64)
    if values.size:
        np.cumsum(values[:-1], out=prefix[1:])
    total = float(values.sum())
    if sched is not None:
        sched.charge(work=2.0 * values.size, depth=2.0 * _log2(values.size), label=label)
    return prefix, total


def parallel_pack(
    values: np.ndarray, flags: np.ndarray, sched=None, label: str = "pack"
) -> np.ndarray:
    """Keep ``values[i]`` where ``flags[i]`` is true (parallel filter).

    Work O(n), depth O(log n) via scan + scatter.
    """
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape[0] != flags.shape[0]:
        raise ValueError(f"values ({values.shape[0]}) and flags ({flags.shape[0]}) differ")
    out = values[flags]
    if sched is not None:
        sched.charge(work=2.0 * values.shape[0], depth=2.0 * _log2(values.shape[0]), label=label)
    return out


def parallel_histogram(
    keys: np.ndarray,
    num_buckets: int,
    weights: Optional[np.ndarray] = None,
    sched=None,
    label: str = "histogram",
) -> np.ndarray:
    """Count (or weight-sum) keys into ``num_buckets`` buckets.

    Mirrors GBBS's parallel histogram: work O(n), depth O(log n) with
    per-worker local buffers merged by reduction.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size and (keys.min() < 0 or keys.max() >= num_buckets):
        raise ValueError("keys out of range for histogram buckets")
    counts = np.bincount(keys, weights=weights, minlength=num_buckets)
    if sched is not None:
        sched.charge(
            work=float(keys.size + num_buckets),
            depth=_log2(max(keys.size, num_buckets)),
            label=label,
        )
    return counts


def ragged_gather_indices(
    offsets: np.ndarray, ids: np.ndarray, sched=None, label: str = "gather"
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the CSR rows ``ids`` into (edge_indices, row_of_edge).

    Given CSR ``offsets`` and a set of row ids, returns the concatenated
    positions of all their incident entries plus, aligned, the local row
    index (position within ``ids``) owning each entry.  This is the
    vectorized equivalent of a nested parallel-for over rows and their
    edges: work O(sum of degrees), depth O(log n).
    """
    ids = np.asarray(ids, dtype=np.int64)
    starts = offsets[ids]
    lens = offsets[ids + 1] - starts
    total = int(lens.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    row_of_edge = np.repeat(np.arange(ids.size, dtype=np.int64), lens)
    # ragged arange: for each row, starts[row] .. starts[row]+len[row]
    first_edge_of_row = np.zeros(ids.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=first_edge_of_row[1:])
    edge_indices = (
        np.arange(total, dtype=np.int64)
        - first_edge_of_row[row_of_edge]
        + starts[row_of_edge]
    )
    if sched is not None:
        sched.charge(work=float(total + ids.size), depth=_log2(total), label=label)
    return edge_indices, row_of_edge
