"""Simulated work-stealing scheduler: machine model and cost ledger.

Why simulation
--------------
The paper's performance results come from a C++ work-stealing runtime on
30/48-core machines.  In CPython the GIL serializes shared-memory threads,
so instead of timing Python threads (which would measure the GIL, not the
algorithms) every parallel primitive in this package *charges* its abstract
cost to a :class:`CostLedger`:

* ``work``   — total number of elementary operations across all workers;
* ``depth``  — operations on the critical path (span);
* ``serial`` — operations that cannot parallelize at any worker count,
  chiefly queueing of atomic compare-and-swap updates on hot locations
  (e.g. the cluster-weight counter of a giant cluster — the paper's
  "twitter contention" effect, Section 4.2).

Simulated time for ``P`` workers is then the Brent-style bound

    T(P) = sum over regions [ work / eff(P) + depth * (1 + tau) + serial ]

with ``eff(P)`` a hyper-threading-aware effective parallelism and ``tau``
the per-depth-level scheduling overhead.  Speedup *shapes* — saturation at
the physical core count, the hyper-threading knee, contention collapse when
few clusters absorb most vertices — are properties of the (work, depth,
serial) profile the algorithms generate, which is exactly what the paper's
algorithmic contributions change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import SchedulerError

#: Default per-depth-level scheduling overhead (steal attempts, fork/join),
#: in elementary-operation units per unit of depth.  Work-stealing
#: schedulers bound overhead by O(P * D) steals total, i.e. a small
#: constant per depth unit per worker on the critical path.
DEFAULT_TAU = 3.0

#: Cost, in elementary operations, of one serialized compare-and-swap on a
#: *contended* location: a failed/retried RMW forces a cross-core
#: cache-line transfer, ~60-100 cycles on the paper's Xeon-class parts.
CAS_COST = 64.0

#: Simulated core frequency used to convert operation counts to seconds.
#: One elementary operation ~ one cycle at 2 GHz; only relative times matter.
OPS_PER_SECOND = 2.0e9

#: Smallest chunk of work (elementary ops) worth forking to another
#: simulated worker; work below ``active * TIMELINE_GRAIN`` stays on fewer
#: lanes, which is what makes tiny windows render as stragglers.
TIMELINE_GRAIN = 256.0

#: Backstop on recorded worker chunks per run: long runs truncate the
#: timeline (flagged via a trace event) instead of exhausting memory.
MAX_WORKER_CHUNKS = 250_000


class WorkerTimeline:
    """Per-worker simulated-time lanes for one instrumented run.

    The cost ledger answers *how long*; the timeline answers *who was busy
    when*.  Every charged region is split into up to ``num_workers`` chunks
    of at least :data:`TIMELINE_GRAIN` ops each and assigned to lanes:

    * regions carrying a depth or serial term model a fork/join barrier —
      all lanes first join at the region start (accumulating idle wait),
      and the critical path ``depth * (1 + tau) + serial`` rides lane 0,
      so stragglers and CAS queues are visible as long lane-0 chunks;
    * pure-work regions (the asynchronous concurrency windows, which the
      engines charge with ``depth=0``) pipeline onto the least-loaded
      lanes with no join, mirroring barrier-free window execution.

    Chunks flow to the attached :class:`~repro.obs.instrument.Instrumentation`
    as ``worker`` trace records carrying ``(worker, start, end, label,
    items, wait)`` where ``wait`` is the idle gap the lane sat through
    since its previous chunk — the per-worker wait/idle stream the
    timeline exporter renders as lane gaps.
    """

    __slots__ = ("instr", "num_workers", "tau", "clock", "pending_wait",
                 "chunks", "truncated")

    def __init__(self, instr, num_workers: int, tau: float) -> None:
        self.instr = instr
        self.num_workers = num_workers
        self.tau = tau
        #: Per-lane frontier, simulated seconds since run start.
        self.clock = [0.0] * num_workers
        #: Idle time accumulated per lane since its last recorded chunk.
        self.pending_wait = [0.0] * num_workers
        self.chunks = 0
        self.truncated = False

    def _emit(self, lane: int, start: float, end: float, label: str,
              items: int) -> None:
        self.instr.worker_chunk(
            lane, start, end, label, items, self.pending_wait[lane]
        )
        self.pending_wait[lane] = 0.0
        self.chunks += 1

    def _truncate(self) -> bool:
        if self.truncated:
            return True
        if self.chunks >= MAX_WORKER_CHUNKS:
            self.truncated = True
            self.instr.event(
                "worker-timeline-truncated", chunks=self.chunks
            )
            return True
        return False

    def barrier(self, label: str = "barrier") -> None:
        """Join every lane at the current maximum (a round boundary)."""
        join = max(self.clock)
        for lane in range(self.num_workers):
            gap = join - self.clock[lane]
            if gap > 0.0:
                self.pending_wait[lane] += gap
                self.clock[lane] = join

    def record(self, label: str, work: float, depth: float, serial: float,
               items: int) -> None:
        """Lay one charged region onto the lanes (see class docstring)."""
        if self._truncate():
            return
        ops = work + serial
        if ops <= 0.0 and depth <= 0.0:
            return
        active = max(1, min(self.num_workers, int(work // TIMELINE_GRAIN) or 1))
        share = (work / active) / OPS_PER_SECOND
        critical = (depth * (1.0 + self.tau) + serial) / OPS_PER_SECOND
        if depth > 0.0 or serial > 0.0:
            # Fork/join region: all lanes join, lane 0 carries the
            # critical path, lanes beyond `active` stay idle.
            self.barrier(label)
            start = self.clock[0]
            for i in range(active):
                chunk_items = (items * (i + 1)) // active - (items * i) // active
                end = start + share + (critical if i == 0 else 0.0)
                self._emit(i, start, end, label, chunk_items)
                self.clock[i] = end
        else:
            # Barrier-free region: greedy assignment to least-loaded lanes.
            if active >= self.num_workers:
                lanes = range(self.num_workers)
            else:
                lanes = sorted(
                    range(self.num_workers), key=self.clock.__getitem__
                )[:active]
            for i, lane in enumerate(lanes):
                chunk_items = (items * (i + 1)) // active - (items * i) // active
                start = self.clock[lane]
                end = start + share
                self._emit(lane, start, end, label, chunk_items)
                self.clock[lane] = end


@dataclass(frozen=True)
class Machine:
    """A machine profile: physical cores and SMT (hyper-threading) lanes.

    ``c2-standard-60()`` and ``m1-megamem-96()`` mirror the two Google Cloud
    instances used in the paper's evaluation.
    """

    cores: int = 30
    smt: int = 2
    #: Aggregate throughput gain of fully-loaded SMT over one thread/core.
    smt_yield: float = 0.35

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SchedulerError(f"cores must be >= 1, got {self.cores}")
        if self.smt < 1:
            raise SchedulerError(f"smt must be >= 1, got {self.smt}")

    @property
    def max_workers(self) -> int:
        """Hardware thread count (cores times SMT ways)."""
        return self.cores * self.smt

    def effective_parallelism(self, num_workers: int) -> float:
        """Throughput-equivalent worker count for ``num_workers`` threads.

        Up to the physical core count each worker contributes fully; beyond
        it, each extra hyper-thread contributes ``smt_yield`` of a core.
        This produces the characteristic knee at ``cores`` seen in the
        paper's thread-scaling plots (Figures 7 and 13).
        """
        if num_workers < 1:
            raise SchedulerError(f"num_workers must be >= 1, got {num_workers}")
        capped = min(num_workers, self.max_workers)
        if capped <= self.cores:
            return float(capped)
        return self.cores + self.smt_yield * (capped - self.cores)

    @staticmethod
    def c2_standard_60() -> "Machine":
        """30 cores, two-way hyper-threading (paper's main machine)."""
        return Machine(cores=30, smt=2)

    @staticmethod
    def m1_megamem_96() -> "Machine":
        """48 cores, two-way hyper-threading (paper's large-graph machine)."""
        return Machine(cores=48, smt=2)


@dataclass
class Region:
    """Cost of one parallel region (one primitive invocation)."""

    label: str
    work: float
    depth: float
    serial: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0 or self.depth < 0 or self.serial < 0:
            raise SchedulerError(
                f"region costs must be non-negative: {self.label!r} "
                f"work={self.work} depth={self.depth} serial={self.serial}"
            )


class CostLedger:
    """Accumulates per-region (work, depth, serial) charges.

    The ledger is intentionally decoupled from any particular worker count:
    an algorithm runs once, and :meth:`simulated_time` can then be evaluated
    for *any* ``P`` — which is how the thread-scaling figures are produced
    without rerunning the clustering per thread count.
    """

    def __init__(self) -> None:
        self._regions: List[Region] = []
        self._totals: Dict[str, float] = {"work": 0.0, "depth": 0.0, "serial": 0.0}

    def charge(
        self,
        work: float,
        depth: float,
        label: str = "",
        serial: float = 0.0,
    ) -> None:
        """Record one parallel region's cost."""
        region = Region(label=label, work=float(work), depth=float(depth), serial=float(serial))
        self._regions.append(region)
        self._totals["work"] += region.work
        self._totals["depth"] += region.depth
        self._totals["serial"] += region.serial

    @property
    def total_work(self) -> float:
        return self._totals["work"]

    @property
    def total_depth(self) -> float:
        return self._totals["depth"]

    @property
    def total_serial(self) -> float:
        return self._totals["serial"]

    @property
    def num_regions(self) -> int:
        return len(self._regions)

    def regions(self) -> Iterator[Region]:
        return iter(self._regions)

    def work_by_label(self) -> Dict[str, float]:
        """Total work grouped by region label (for profiling benches)."""
        out: Dict[str, float] = {}
        for region in self._regions:
            out[region.label] = out.get(region.label, 0.0) + region.work
        return out

    def merge(self, other: "CostLedger") -> None:
        """Append all of ``other``'s regions to this ledger."""
        for region in other.regions():
            self.charge(region.work, region.depth, region.label, region.serial)

    def simulated_time(
        self,
        num_workers: int,
        machine: Optional[Machine] = None,
        tau: float = DEFAULT_TAU,
    ) -> float:
        """Simulated seconds to execute all charged regions on ``P`` workers.

        Applies the Brent bound per region; with ``num_workers == 1`` the
        depth and serial terms fold into the work term (a sequential run
        pays no scheduling overhead), matching how the paper's sequential
        baselines are plain loops with no runtime.
        """
        machine = machine or Machine.c2_standard_60()
        if num_workers == 1:
            ops = self.total_work + self.total_serial
            return ops / OPS_PER_SECOND
        eff = machine.effective_parallelism(num_workers)
        ops = (
            self.total_work / eff
            + self.total_depth * (1.0 + tau)
            + self.total_serial
        )
        return ops / OPS_PER_SECOND

    def snapshot(self) -> Dict[str, float]:
        """Totals as a plain dict (stable API for result records)."""
        return dict(self._totals)

    def profile(self, top: int = 10) -> List[tuple]:
        """Top regions by work: ``(label, work, share_of_total_work)``.

        The profiling view benches use to attribute simulated time to
        algorithm phases (best moves vs compression vs frontier vs CAS
        contention).
        """
        by_label = self.work_by_label()
        total = self.total_work or 1.0
        ranked = sorted(by_label.items(), key=lambda kv: -kv[1])[:top]
        return [(label, work, work / total) for label, work in ranked]


class SimulatedScheduler:
    """Facade bundling a machine profile, worker count, and cost ledger.

    One scheduler is created per clustering run; primitives receive it (or
    ``None`` to skip accounting) and call :meth:`charge`.
    """

    def __init__(
        self,
        num_workers: int = 60,
        machine: Optional[Machine] = None,
        tau: float = DEFAULT_TAU,
        faults=None,
        instr=None,
        backend=None,
    ) -> None:
        self.machine = machine or Machine.c2_standard_60()
        if num_workers < 1:
            raise SchedulerError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.tau = tau
        self.ledger = CostLedger()
        #: Optional :class:`repro.resilience.faults.FaultPlan`; primitives
        #: that take a scheduler consult it to inject concurrency hazards.
        self.faults = faults
        #: Optional :class:`repro.obs.instrument.Instrumentation`; rides the
        #: scheduler for the same reason ``faults`` does — everything that
        #: can charge costs can also trace/record (see ``instr_of``).
        self.instr = instr
        #: Optional non-inline :class:`repro.parallel.backend.ExecutionBackend`
        #: executing the parallel phases on real cores; rides the scheduler
        #: through the same conduit as ``faults``/``instr``.  ``None`` (the
        #: default, and the ``simulated`` backend) keeps every phase inline.
        self.backend = backend
        #: Per-worker lane recorder; only materialized for an *enabled*
        #: instrumentation so uninstrumented runs pay one ``is None`` check.
        self._timeline = (
            WorkerTimeline(instr, num_workers, tau)
            if instr is not None and instr.enabled
            else None
        )

    @property
    def timeline(self) -> Optional[WorkerTimeline]:
        """The worker-lane recorder, or None when instrumentation is off."""
        return self._timeline

    def charge(
        self,
        work: float,
        depth: float,
        label: str = "",
        serial: float = 0.0,
        items: int = 0,
    ) -> None:
        self.ledger.charge(work, depth, label=label, serial=serial)
        timeline = self._timeline
        if timeline is not None:
            timeline.record(label, work, depth, serial, items)

    def round_barrier(self) -> None:
        """Join all simulated workers — engines call this at round ends.

        A BEST-MOVES round ends in a frontier computation every worker
        feeds, so lanes synchronize; the join's idle gaps become the
        ``wait`` field of each lane's next chunk.  No-op (one attribute
        check) when instrumentation is disabled.
        """
        timeline = self._timeline
        if timeline is not None:
            timeline.barrier("round")

    def charge_cas_contention(self, queue_lengths, label: str = "cas") -> None:
        """Charge contention for concurrent CAS updates to shared counters.

        ``queue_lengths`` holds, per contended location, the number of
        concurrent updates in the current concurrency window.  A location
        hit by ``q`` concurrent CASes serializes: the first succeeds, the
        rest retry — ``q - 1`` retries of work and a serialized queue of
        length ``q`` on the critical path of this window.
        """
        total_retries = 0.0
        max_queue = 0.0
        for q in queue_lengths:
            if q > 1:
                total_retries += q - 1
                if q > max_queue:
                    max_queue = q
        if total_retries > 0:
            self.charge(
                work=CAS_COST * total_retries,
                depth=0.0,
                label=label,
                serial=CAS_COST * max_queue,
                items=int(total_retries),
            )
            instr = self.instr
            if instr is not None and instr.enabled:
                from repro.obs.instrument import (
                    M_ATOMIC_QUEUE,
                    M_CAS_INJECTED,
                    M_CAS_RETRIES,
                )

                name = (
                    M_CAS_INJECTED if label.endswith("-injected-cas")
                    else M_CAS_RETRIES
                )
                instr.count(name, total_retries)
                instr.observe(M_ATOMIC_QUEUE, float(max_queue))

    def simulated_time(self, num_workers: Optional[int] = None) -> float:
        """Simulated seconds at ``num_workers`` (default: this scheduler's)."""
        workers = self.num_workers if num_workers is None else num_workers
        return self.ledger.simulated_time(workers, machine=self.machine, tau=self.tau)

    def fork(self) -> "SimulatedScheduler":
        """A child scheduler with the same profile and a fresh ledger.

        Children never record worker lanes: their simulated clocks start
        at zero, so their chunks would overlap the root's lane intervals.
        """
        child = SimulatedScheduler(
            self.num_workers,
            self.machine,
            self.tau,
            instr=self.instr,
            backend=self.backend,
        )
        child._timeline = None
        return child

    def absorb(self, child: "SimulatedScheduler") -> None:
        """Merge a child scheduler's ledger into this one."""
        self.ledger.merge(child.ledger)
