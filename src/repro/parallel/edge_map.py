"""EDGEMAP: map over the out-edges of a vertex subset (GBBS primitive).

The paper uses EDGEMAP "to maintain the frontier of neighbors of moved
vertices or of modified clusters in each step of BEST-MOVES" (Appendix B).
Given a frontier ``S``, :func:`edge_map` returns the subset of neighbors of
``S`` — in sparse mode by gathering adjacency slices, in dense mode by a
mask pass over all edges — charging the direction-appropriate cost.
"""

from __future__ import annotations

import math

import numpy as np

from repro.parallel.primitives import ragged_gather_indices
from repro.parallel.vertex_subset import VertexSubset, should_densify


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(n, 2)))


def edge_map(graph, frontier: VertexSubset, sched=None, label: str = "edge-map") -> VertexSubset:
    """Neighbors of ``frontier`` in ``graph`` as a new :class:`VertexSubset`.

    ``graph`` must expose CSR fields ``offsets``/``neighbors`` and
    ``num_vertices``/``num_directed_edges`` (see
    :class:`repro.graphs.csr.CSRGraph`).  Representation (sparse gather vs
    dense scan) follows the Ligra switching rule; cost charges differ
    accordingly:

    * sparse: work O(|S| + sum of deg(S)), depth O(log n);
    * dense:  work O(n + m), depth O(log n).
    """
    n = graph.num_vertices
    m = graph.num_directed_edges
    ids = frontier.ids()
    if ids.size == 0:
        return VertexSubset.empty(n)
    degs = graph.offsets[ids + 1] - graph.offsets[ids]
    deg_sum = int(degs.sum())
    dense = should_densify(ids.size, deg_sum, m)
    if dense:
        mask = frontier.mask()
        # A vertex is in the output iff one of its neighbors is in S; scan
        # all edges once (dense direction reads in-edges, which equals
        # out-edges for our symmetric graphs).
        hit = mask[graph.neighbors]
        out_mask = np.zeros(n, dtype=bool)
        src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.offsets).astype(np.int64)
        )
        out_mask[src[hit]] = True
        if sched is not None:
            sched.charge(work=float(n + m), depth=_log2(n), label=label + "-dense")
        return VertexSubset(n, mask=out_mask)
    # Sparse direction: gather adjacency slices of the frontier.  A
    # non-inline execution backend (DESIGN.md §13) shards the gather over
    # real cores; the result is the same concatenated-in-CSR-order array.
    backend = getattr(sched, "backend", None)
    if backend is not None and not backend.inline:
        nbrs = backend.gather_neighbors(
            graph, ids, instr=getattr(sched, "instr", None)
        )
    else:
        edge_idx, _ = ragged_gather_indices(graph.offsets, ids)
        nbrs = graph.neighbors[edge_idx]
    if sched is not None:
        sched.charge(
            work=float(ids.size + deg_sum), depth=_log2(max(deg_sum, 2)), label=label + "-sparse"
        )
    return VertexSubset.from_ids(n, nbrs, sched=sched)
