"""Parallel hash table for weight aggregation (GBBS-style).

Appendix B: computing a vertex's desired cluster iterates over its
neighbors and accumulates, per neighboring cluster, the sum of edge weights
— using "a parallel hash table [18], from the GBBS implementation" for
high-degree vertices, and a sequential table for low-degree ones, chosen by
a fixed degree threshold.

The table here is semantically a (int key -> float sum) map.  Execution is
vectorized; the *charged* cost differs between the two kernels:

* sequential kernel: work O(d), depth O(d) — the whole scan is on one
  worker's critical path;
* parallel kernel:   work O(d) plus table-init overhead, depth O(log d) —
  concurrent inserts with linearly-probed CAS.

``DEGREE_THRESHOLD`` mirrors the paper's "fixed threshold to choose between
using the sequential subroutine versus the parallel subroutine".
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

#: Degree above which the parallel aggregation kernel is chosen.
DEGREE_THRESHOLD = 512

#: Multiplicative space overhead of the open-addressing table.
TABLE_SLACK = 1.3

#: Per-insert CAS cost premium of the concurrent table.
PARALLEL_INSERT_COST = 2.0


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(n, 2)))


def aggregate_by_key(
    keys: np.ndarray,
    weights: np.ndarray,
    sched=None,
    parallel: bool = False,
    label: str = "cluster-weights",
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``weights`` grouped by integer ``keys``.

    Returns ``(unique_keys, sums)``.  ``parallel`` selects which kernel's
    cost is charged (results are identical).
    """
    keys = np.asarray(keys, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if keys.shape != weights.shape:
        raise ValueError(f"keys {keys.shape} and weights {weights.shape} must match")
    if keys.size == 0:
        return keys.copy(), weights.copy()
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=unique_keys.size)
    if sched is not None:
        d = keys.size
        if parallel:
            table_size = TABLE_SLACK * d
            sched.charge(
                work=PARALLEL_INSERT_COST * d + table_size,
                depth=_log2(d) * 2.0,
                label=label + "-par",
            )
        else:
            sched.charge(work=float(d), depth=float(d), label=label + "-seq")
    return unique_keys, sums


def choose_parallel_kernel(degree: int, threshold: int = DEGREE_THRESHOLD) -> bool:
    """Heuristic kernel choice by vertex degree (Appendix B)."""
    return degree > threshold
