"""Parallel hash table for weight aggregation (GBBS-style).

Appendix B: computing a vertex's desired cluster iterates over its
neighbors and accumulates, per neighboring cluster, the sum of edge weights
— using "a parallel hash table [18], from the GBBS implementation" for
high-degree vertices, and a sequential table for low-degree ones, chosen by
a fixed degree threshold.

The table here is semantically a (int key -> float sum) map.  Execution is
vectorized; the *charged* cost differs between the two kernels:

* sequential kernel: work O(d), depth O(d) — the whole scan is on one
  worker's critical path;
* parallel kernel:   work O(d) plus table-init overhead, depth O(log d) —
  concurrent inserts with linearly-probed CAS.

``DEGREE_THRESHOLD`` mirrors the paper's "fixed threshold to choose between
using the sequential subroutine versus the parallel subroutine".
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

#: Degree above which the parallel aggregation kernel is chosen.
DEGREE_THRESHOLD = 512

#: Multiplicative space overhead of the open-addressing table.
TABLE_SLACK = 1.3

#: Per-insert CAS cost premium of the concurrent table.
PARALLEL_INSERT_COST = 2.0

#: Initial capacity of the growable sequential table (before doubling).
SEQ_TABLE_INITIAL = 16


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(n, 2)))


def observe_table_metrics(
    instr,
    degrees: np.ndarray,
    threshold: int = DEGREE_THRESHOLD,
    label: str = "cluster-weights",
) -> None:
    """Observe modeled probe-length / resize histograms for one batch.

    Observe-only — never charges the ledger.  The parallel table is
    presized from the degree (capacity = next power of two at or above
    ``TABLE_SLACK * d``), so it never resizes; its linear-probing insert
    cost follows the classic ``(1 + 1/(1-a)^2) / 2`` expectation at load
    factor ``a``.  The sequential table grows by doubling from
    ``SEQ_TABLE_INITIAL`` at load 0.5, so its resize count is the number
    of doublings the final size implies.  One degree-weighted sample per
    kernel per batch keeps the enabled-path cost O(batch) vectorized.
    """
    if not instr.enabled or degrees.size == 0:
        return
    from repro.obs.instrument import M_HASH_PROBES, M_HASH_RESIZES

    d = np.maximum(degrees.astype(np.float64), 1.0)
    par_mask = degrees > threshold
    if par_mask.any():
        dp = d[par_mask]
        capacity = np.exp2(np.ceil(np.log2(TABLE_SLACK * dp)))
        load = dp / capacity
        probes = 0.5 * (1.0 + 1.0 / (1.0 - load) ** 2)
        instr.observe(
            M_HASH_PROBES,
            float(np.average(probes, weights=dp)),
            kernel="par",
            site=label,
        )
    seq_mask = ~par_mask
    if seq_mask.any():
        ds = d[seq_mask]
        capacity = np.maximum(
            np.exp2(np.ceil(np.log2(2.0 * ds))), float(SEQ_TABLE_INITIAL)
        )
        load = ds / capacity
        probes = 0.5 * (1.0 + 1.0 / (1.0 - load) ** 2)
        instr.observe(
            M_HASH_PROBES,
            float(np.average(probes, weights=ds)),
            kernel="seq",
            site=label,
        )
        resizes = np.maximum(np.log2(capacity / SEQ_TABLE_INITIAL), 0.0)
        instr.observe(M_HASH_RESIZES, float(resizes.sum()), site=label)


def aggregate_by_key(
    keys: np.ndarray,
    weights: np.ndarray,
    sched=None,
    parallel: bool = False,
    label: str = "cluster-weights",
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``weights`` grouped by integer ``keys``.

    Returns ``(unique_keys, sums)``.  ``parallel`` selects which kernel's
    cost is charged (results are identical).
    """
    keys = np.asarray(keys, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if keys.shape != weights.shape:
        raise ValueError(f"keys {keys.shape} and weights {weights.shape} must match")
    if keys.size == 0:
        return keys.copy(), weights.copy()
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=unique_keys.size)
    if sched is not None:
        d = keys.size
        if parallel:
            table_size = TABLE_SLACK * d
            sched.charge(
                work=PARALLEL_INSERT_COST * d + table_size,
                depth=_log2(d) * 2.0,
                label=label + "-par",
            )
        else:
            sched.charge(work=float(d), depth=float(d), label=label + "-seq")
        instr = getattr(sched, "instr", None)
        if instr is not None and instr.enabled:
            # Route the single pseudo-vertex to the kernel actually chosen
            # (threshold -1 forces par, d forces seq in the helper's mask).
            observe_table_metrics(
                instr,
                np.array([d], dtype=np.int64),
                threshold=-1 if parallel else d,
                label=label,
            )
    return unique_keys, sums


def choose_parallel_kernel(degree: int, threshold: int = DEGREE_THRESHOLD) -> bool:
    """Heuristic kernel choice by vertex degree (Appendix B)."""
    return degree > threshold
