"""Execution-backend bench: real cores vs the simulated baseline (PR9).

Two measurements per workload (scale-12 RMAT and an LFR graph):

* **end-to-end**: ``cluster()`` wall clock under the simulated backend
  and under warm process pools of 1/2/4 workers (pool start-up excluded
  — the pool is created once per run and reused, which is how the
  dynamic subsystem and the serving path hold it);
* **move-eval**: the batch move-evaluation phase alone — one full-graph
  batch dispatched through the pool — the phase the ISSUE 9 speedup gate
  targets.

Every process row is checked bit-identical against its simulated
baseline (same assignments, same objective) before any timing is
trusted; a backend that broke parity would be measuring a different
algorithm.

**Honesty over aspiration:** the committed ``BENCH_PR9.json`` records
``host_cpu_count`` in its meta.  Real-core speedup is physically bounded
by the cores the host exposes — on a 1-CPU container 4 workers time-slice
one core and the "speedup" is IPC overhead, not parallelism.  The >= 2x
gate in ``benchmarks/bench_backend.py`` therefore applies only when the
measuring host has >= 4 CPUs; below that the numbers are still recorded
(so a multi-core host regenerating the snapshot picks up the gate
automatically) but the assertion is explicitly skipped.

Regenerate the snapshot with ``python -m repro.parallel.backend.bench
--out .``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.api import cluster
from repro.core.config import ClusteringConfig, Frontier, Mode
from repro.core.options import RunOptions
from repro.generators.lfr import lfr_like_graph
from repro.generators.rmat import rmat_graph
from repro.obs.bench import BenchSuite, time_callable
from repro.parallel.backend.process import ProcessBackend

#: Worker counts swept by the suite (1 is the IPC-overhead control).
WORKER_SWEEP = (1, 2, 4)

#: The acceptance gate: >= 2x move-eval speedup at 4 workers vs 1 —
#: applicable only when the host actually has >= 4 CPUs.
TARGET_SPEEDUP = 2.0
GATE_MIN_CPUS = 4

#: Resolution shared by both workloads.
BACKEND_RESOLUTION = 0.05


def _workloads(seed: int):
    return {
        "rmat12": rmat_graph(12, 8 * 2**12, seed=seed),
        "lfr": lfr_like_graph(3000, mixing=0.2, seed=seed).graph,
    }


def _config(seed: int) -> ClusteringConfig:
    # Synchronous mode with the ALL frontier keeps batch windows at full
    # frontier width — the dispatch-heavy shape the backend accelerates.
    return ClusteringConfig(
        resolution=BACKEND_RESOLUTION,
        mode=Mode.SYNC,
        frontier=Frontier.ALL,
        seed=seed,
    )


def backend_suite(repeats: int = 3, seed: int = 3) -> BenchSuite:
    """Run the backend sweep; returns the suite behind ``BENCH_PR9.json``."""
    cpu_count = os.cpu_count() or 1
    suite = BenchSuite(
        "PR9",
        meta={
            "host_cpu_count": cpu_count,
            "speedup_gate_applicable": cpu_count >= GATE_MIN_CPUS,
            "target_speedup": TARGET_SPEEDUP,
            "worker_sweep": list(WORKER_SWEEP),
            "repeats": repeats,
            "resolution": BACKEND_RESOLUTION,
            "seed": seed,
        },
    )
    config = _config(seed)
    for name, graph in _workloads(seed).items():
        baseline, base_timing = time_callable(
            lambda: cluster(graph, config), repeats=repeats, warmup=1
        )
        suite.add_row(
            f"{name}-simulated",
            metrics={
                "wall_seconds": base_timing.best,
                "f_objective": baseline.objective,
            },
            vertices=graph.num_vertices,
            edges=graph.num_edges,
        )

        from repro.core.state import ClusterState

        full_batch = np.arange(graph.num_vertices, dtype=np.int64)
        eval_walls = {}
        for workers in WORKER_SWEEP:
            with ProcessBackend(workers=workers, min_dispatch=64) as backend:
                result, timing = time_callable(
                    lambda: cluster(graph, config, RunOptions(backend=backend)),
                    repeats=repeats,
                    warmup=1,
                )
                stats = backend.stats()
                identical = bool(
                    np.array_equal(baseline.assignments, result.assignments)
                    and baseline.objective == result.objective
                )

                # Move-eval phase alone: one full-graph batch per call.
                state = ClusterState.singletons(graph)
                _, eval_timing = time_callable(
                    lambda: backend.batch_moves(
                        graph,
                        state,
                        full_batch,
                        BACKEND_RESOLUTION,
                        allow_escape=True,
                        swap_avoidance=False,
                        kernel="vectorized",
                    ),
                    repeats=repeats,
                    warmup=1,
                )
            eval_walls[workers] = eval_timing.best
            suite.add_row(
                f"{name}-process-w{workers}",
                metrics={
                    "wall_seconds": timing.best,
                    "moveeval_wall_seconds": eval_timing.best,
                    "f_objective": result.objective,
                    "speedup": base_timing.best / timing.best,
                    "moveeval_speedup": (
                        eval_walls[WORKER_SWEEP[0]] / eval_timing.best
                    ),
                },
                identical=identical,
                faulted=bool(stats["faulted"]),
                dispatches=int(stats["dispatches"]),
                bytes_shared=int(stats["bytes_shared"]),
            )
    return suite


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="regenerate BENCH_PR9.json (execution-backend sweep)"
    )
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    suite = backend_suite(repeats=args.repeats)
    path = suite.write(args.out)
    print(f"wrote {path}")
    for row in suite.rows:
        metrics = " ".join(f"{k}={v:.4g}" for k, v in row.metrics.items())
        print(f"  {row.key}: {metrics} {row.info}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
