"""Real shared-memory multiprocess execution backend.

A persistent pool of ``multiprocessing`` workers executes the
embarrassingly-parallel phases over ``multiprocessing.shared_memory``
segments: the parent copies each level graph's CSR arrays into shared
segments once (an *epoch*), adopts the live :class:`ClusterState` arrays
into shared slabs (so ``apply_moves`` updates are visible to workers with
no per-window copy), and fans each phase out as contiguous shards over
per-worker pipes.  Workers attach every segment zero-copy as numpy views
and run the exact same kernels the inline path runs.

Bit-identity (DESIGN.md §13) holds by construction:

* move evaluation is per-vertex independent — each row's segment sums and
  argmax read only its own CSR slice plus the shared state snapshot — so
  evaluating contiguous shards and concatenating in shard order produces
  byte-for-byte the full-batch kernel's output (which is itself
  bit-identical to the dict oracle, DESIGN.md §8);
* the frontier gather and the compression key construction are pure
  elementwise gathers, trivially shard-invariant;
* the parent performs every commit (``apply_moves``), reduction, sort,
  and aggregation itself, in the same order as the inline path.

Fault policy: a dead worker, a poisoned pipe, or an unavailable
``/dev/shm`` marks the backend *faulted* — the failed dispatch re-runs
inline, every later phase stays inline, the pool and all segments are
torn down, and one ``RuntimeWarning`` reports the degradation.  Results
are unaffected (inline is bit-identical), so a faulted run completes
instead of failing; the supervisor ladder additionally carries a
``simulated-backend`` rung for errors raised before the pool exists.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import time
import traceback
import warnings
import weakref
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.kernels import get_kernel
from repro.parallel.backend.base import ExecutionBackend, resolve_workers
from repro.parallel.primitives import ragged_gather_indices

#: Shared-segment name prefix; the leak tests scan ``/dev/shm`` for it.
SEG_PREFIX = "repro-shm"

#: Process-global segment-name sequence (see ``_new_segment``).
_SEG_SEQ = itertools.count()

#: Below this many touched elements a dispatch's IPC round-trip costs more
#: than the inline numpy call; such phases run inline (bit-identical, so
#: the threshold crossing is invisible in results).
MIN_DISPATCH_WORK = 4096


class BackendUnavailable(RuntimeError):
    """The process backend cannot start here (no shm, no start method)."""


class _WorkerFailure(RuntimeError):
    """A pool worker died or errored mid-dispatch."""


def leaked_segment_files() -> list:
    """Names of our shared segments still present under ``/dev/shm``."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith(SEG_PREFIX)
        )
    except OSError:
        return []


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
class _ShmGraph:
    """CSR facade over attached segments — only what the kernels touch."""

    __slots__ = (
        "offsets",
        "neighbors",
        "weights",
        "node_weights",
        "num_vertices",
        "has_integer_weights",
    )

    def __init__(self, offsets, neighbors, weights, node_weights, n, int_w):
        self.offsets = offsets
        self.neighbors = neighbors
        self.weights = weights
        self.node_weights = node_weights
        self.num_vertices = n
        self.has_integer_weights = int_w


class _ShmState:
    """ClusterState facade over the adopted state slabs (read-only here)."""

    __slots__ = ("assignments", "cluster_weights", "cluster_sizes", "node_weights")

    def __init__(self, assignments, cluster_weights, cluster_sizes, node_weights):
        self.assignments = assignments
        self.cluster_weights = cluster_weights
        self.cluster_sizes = cluster_sizes
        self.node_weights = node_weights


class _SegmentCache:
    """Worker-side LRU of attached segments, keyed by segment name."""

    def __init__(self, cap: int = 32) -> None:
        self.cap = cap
        self._entries: OrderedDict = OrderedDict()

    def array(self, name: str, dtype, length: int) -> np.ndarray:
        entry = self._entries.get(name)
        if entry is None:
            from multiprocessing import shared_memory

            # Attaching (create=False) does not register with the resource
            # tracker on this Python — the parent is the sole owner and
            # unlinks every segment it created at close().
            shm = shared_memory.SharedMemory(name=name)
            entry = (shm, shm.buf)
            self._entries[name] = entry
            while len(self._entries) > self.cap:
                _, (old, _) = self._entries.popitem(last=False)
                old.close()
        else:
            self._entries.move_to_end(name)
        return np.ndarray((length,), dtype=dtype, buffer=entry[1])

    def close(self) -> None:
        for shm, _ in self._entries.values():
            try:
                shm.close()
            except Exception:
                pass
        self._entries.clear()


def _meta_graph(cache: _SegmentCache, meta: dict) -> _ShmGraph:
    n, m = meta["n"], meta["m"]
    return _ShmGraph(
        cache.array(meta["g_off"], np.int64, n + 1),
        cache.array(meta["g_nbr"], np.int64, m),
        cache.array(meta["g_w"], np.float64, m),
        cache.array(meta["g_nw"], np.float64, n),
        n,
        meta["int_w"],
    )


def _worker_main(worker_id: int, conn) -> None:
    cache = _SegmentCache()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "die":  # chaos injection: simulate a hard worker crash
            os._exit(17)
        try:
            t0 = time.perf_counter()
            if kind == "moves":
                _, meta, lo, hi, resolution, allow_escape, swap_avoidance, kernel = msg
                graph = _meta_graph(cache, meta)
                n = meta["n"]
                state = _ShmState(
                    cache.array(meta["s_asn"], np.int64, n),
                    cache.array(meta["s_cw"], np.float64, n),
                    cache.array(meta["s_cs"], np.int64, n),
                    graph.node_weights,
                )
                ids = cache.array(meta["ids"], np.int64, meta["ids_cap"])
                out_t = cache.array(meta["out_t"], np.int64, meta["ids_cap"])
                out_g = cache.array(meta["out_g"], np.float64, meta["ids_cap"])
                targets, gains = get_kernel(kernel).batch_moves(
                    graph,
                    state,
                    ids[lo:hi],
                    resolution,
                    allow_escape=allow_escape,
                    swap_avoidance=swap_avoidance,
                    instr=None,
                )
                out_t[lo:hi] = targets
                out_g[lo:hi] = gains
                items = hi - lo
            elif kind == "nbrs":
                _, meta, lo, hi, out_base = msg
                graph = _meta_graph(cache, meta)
                ids = cache.array(meta["ids"], np.int64, meta["ids_cap"])
                out_e = cache.array(meta["edge_a"], np.int64, meta["edge_cap"])
                edge_idx, _ = ragged_gather_indices(graph.offsets, ids[lo:hi])
                out_e[out_base : out_base + edge_idx.size] = graph.neighbors[edge_idx]
                items = hi - lo
            elif kind == "super":
                _, meta, lo, hi = msg
                graph = _meta_graph(cache, meta)
                v2s = cache.array(meta["map"], np.int64, meta["ids_cap"])
                out_a = cache.array(meta["edge_a"], np.int64, meta["edge_cap"])
                out_b = cache.array(meta["edge_b"], np.int64, meta["edge_cap"])
                edges = np.arange(lo, hi, dtype=np.int64)
                src = (
                    np.searchsorted(graph.offsets, edges, side="right") - 1
                )
                out_a[lo:hi] = v2s[src]
                out_b[lo:hi] = v2s[graph.neighbors[lo:hi]]
                items = hi - lo
            else:
                raise RuntimeError(f"unknown task kind {kind!r}")
            conn.send(("ok", worker_id, items, t0, time.perf_counter()))
        except Exception:
            try:
                conn.send(("err", worker_id, traceback.format_exc()))
            except Exception:
                break
    cache.close()
    try:
        conn.close()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
def _final_cleanup(procs, conns, segments) -> None:
    """GC/exit-safe teardown: stop workers, then close+unlink segments."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        except Exception:
            pass
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for shm in list(segments.values()):
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass
    segments.clear()


class _Epoch:
    """One graph's CSR arrays resident in shared segments."""

    __slots__ = ("graph", "meta")

    def __init__(self, graph, meta):
        self.graph = graph  # strong ref: keeps id(graph) stable while cached
        self.meta = meta


class ProcessBackend(ExecutionBackend):
    """Persistent shared-memory worker pool (see module docstring)."""

    name = "process"
    inline = False

    #: Graph epochs kept resident at once; multilevel refinement revisits
    #: level graphs, so evicting too eagerly would re-copy per level.
    EPOCH_CAP = 8

    def __init__(
        self,
        workers: int = 0,
        machine=None,
        start_method: Optional[str] = None,
        min_dispatch: int = MIN_DISPATCH_WORK,
        chaos_kill_after: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers, machine)
        self.min_dispatch = int(min_dispatch)
        self.chaos_kill_after = chaos_kill_after
        self._faulted = False
        self._fault_reason = ""
        self._closed = False
        self._dispatches = 0
        self._inline_small = 0
        self._bytes_shared = 0
        self._segments: dict = {}  # name -> SharedMemory (we own all of these)
        self._slabs: dict = {}  # role -> (name, np.ndarray, capacity)
        self._epochs: OrderedDict = OrderedDict()  # id(graph) -> _Epoch
        self._adopted: Optional[ClusterState] = None
        self._adopted_n = 0

        try:
            from multiprocessing import shared_memory  # noqa: F401
        except ImportError as exc:  # pragma: no cover - py always ships it
            raise BackendUnavailable(f"shared_memory unavailable: {exc}")
        methods = mp.get_all_start_methods()
        method = start_method or ("fork" if "fork" in methods else "spawn")
        if method not in methods:
            raise BackendUnavailable(f"start method {method!r} unavailable")
        try:
            self._ctx = mp.get_context(method)
            probe = self._new_segment(8)  # verify /dev/shm actually works
            self._drop_segment(probe)
            self._procs = []
            self._conns = []
            for wid in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(wid, child_conn),
                    daemon=True,
                    name=f"repro-backend-{wid}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BackendUnavailable:
            raise
        except Exception as exc:
            _final_cleanup(
                getattr(self, "_procs", []),
                getattr(self, "_conns", []),
                self._segments,
            )
            raise BackendUnavailable(f"worker pool failed to start: {exc}")
        self._t_base = time.perf_counter()
        self._finalizer = weakref.finalize(
            self, _final_cleanup, self._procs, self._conns, self._segments
        )

    # ------------------------------------------------------------------
    # segments and slabs
    # ------------------------------------------------------------------
    def _new_segment(self, nbytes: int):
        from multiprocessing import shared_memory

        # The sequence is process-global, not per-backend: two live pools
        # in one parent (e.g. a module-scoped test fixture next to a
        # scoped one) must never mint the same segment name.
        name = f"{SEG_PREFIX}-{os.getpid()}-{next(_SEG_SEQ)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 8))
        self._segments[shm.name] = shm
        self._bytes_shared += shm.size
        return shm

    def _drop_segment(self, shm) -> None:
        self._segments.pop(shm.name, None)
        shm.close()
        shm.unlink()

    def _share_array(self, values: np.ndarray):
        """Copy ``values`` into a fresh segment; returns (name, view)."""
        shm = self._new_segment(values.nbytes)
        view = np.ndarray(values.shape, dtype=values.dtype, buffer=shm.buf)
        view[:] = values
        return shm.name, view

    def _slab(self, role: str, dtype, needed: int) -> Tuple[str, np.ndarray]:
        """A reusable named slab with capacity >= ``needed`` elements."""
        entry = self._slabs.get(role)
        if entry is not None and entry[2] >= needed:
            return entry[0], entry[1]
        cap = 1 << max(3, int(needed - 1).bit_length())
        if entry is not None:
            # Workers referencing the old name keep their mapping alive
            # until their LRU caches evict it; unlinking now is safe.
            self._drop_segment(self._segments[entry[0]])
        shm = self._new_segment(cap * np.dtype(dtype).itemsize)
        arr = np.ndarray((cap,), dtype=dtype, buffer=shm.buf)
        self._slabs[role] = (shm.name, arr, cap)
        return shm.name, arr

    def _epoch(self, graph: CSRGraph) -> dict:
        key = id(graph)
        epoch = self._epochs.get(key)
        if epoch is not None and epoch.graph is graph:
            self._epochs.move_to_end(key)
            return epoch.meta
        n = graph.num_vertices
        m = graph.neighbors.size
        off_name, _ = self._share_array(np.ascontiguousarray(graph.offsets, np.int64))
        nbr_name, _ = self._share_array(np.ascontiguousarray(graph.neighbors, np.int64))
        w_name, _ = self._share_array(np.ascontiguousarray(graph.weights, np.float64))
        nw_name, _ = self._share_array(
            np.ascontiguousarray(graph.node_weights, np.float64)
        )
        meta = {
            "n": n,
            "m": m,
            "int_w": bool(graph.has_integer_weights),
            "g_off": off_name,
            "g_nbr": nbr_name,
            "g_w": w_name,
            "g_nw": nw_name,
        }
        self._epochs[key] = _Epoch(graph, meta)
        while len(self._epochs) > self.EPOCH_CAP:
            _, old = self._epochs.popitem(last=False)
            for seg_key in ("g_off", "g_nbr", "g_w", "g_nw"):
                shm = self._segments.get(old.meta[seg_key])
                if shm is not None:
                    self._drop_segment(shm)
        return meta

    # ------------------------------------------------------------------
    # state adoption
    # ------------------------------------------------------------------
    def _adopt_state(self, state: ClusterState) -> None:
        """Back ``state``'s arrays with shared slabs (one O(n) copy).

        ``apply_moves`` then mutates shared memory in place, so workers
        observe every committed window with no further copies.  The
        previous adoptee (each refinement level builds a fresh state) is
        *un-adopted* first: its contents are copied back into private
        arrays so no view dangles once slabs are reused or unlinked.
        """
        if self._adopted is state and self._adopted_n == state.assignments.size:
            return
        self._unadopt()
        n = state.assignments.size
        _, asn = self._slab("s_asn", np.int64, n)
        _, cw = self._slab("s_cw", np.float64, n)
        _, cs = self._slab("s_cs", np.int64, n)
        asn[:n] = state.assignments
        cw[:n] = state.cluster_weights
        cs[:n] = state.cluster_sizes
        state.assignments = asn[:n]
        state.cluster_weights = cw[:n]
        state.cluster_sizes = cs[:n]
        self._adopted = state
        self._adopted_n = n

    def _unadopt(self) -> None:
        state = self._adopted
        if state is not None:
            state.assignments = state.assignments.copy()
            state.cluster_weights = state.cluster_weights.copy()
            state.cluster_sizes = state.cluster_sizes.copy()
            self._adopted = None
            self._adopted_n = 0

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _shards(self, total: int) -> list:
        bounds = [i * total // self.workers for i in range(self.workers + 1)]
        return [
            (w, bounds[w], bounds[w + 1])
            for w in range(self.workers)
            if bounds[w + 1] > bounds[w]
        ]

    def _dispatch(self, tasks, phase: str, instr=None) -> None:
        """Send one task per worker and await all replies.

        Raises :class:`_WorkerFailure` on a dead or erroring worker; the
        caller degrades to inline execution.
        """
        t_send = time.perf_counter()
        if (
            self.chaos_kill_after is not None
            and self._dispatches >= self.chaos_kill_after
        ):
            self.chaos_kill_after = None
            try:
                self._conns[0].send(("die",))
            except Exception:
                pass
        self._dispatches += 1
        try:
            for wid, msg in tasks:
                self._conns[wid].send(msg)
            replies = [self._conns[wid].recv() for wid, _ in tasks]
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise _WorkerFailure(f"worker pipe failed during {phase}: {exc}")
        for reply in replies:
            if reply[0] != "ok":
                raise _WorkerFailure(
                    f"worker {reply[1]} errored during {phase}:\n{reply[2]}"
                )
        if instr is not None and instr.enabled:
            for reply in replies:
                _, wid, items, t0, t1 = reply
                instr.worker_chunk(
                    wid,
                    max(0.0, t0 - self._t_base),
                    max(0.0, t1 - self._t_base),
                    f"backend-{phase}",
                    items=items,
                    clock="wall",
                )
            from repro.obs.instrument import M_BACKEND_DISPATCH

            instr.observe(
                M_BACKEND_DISPATCH, time.perf_counter() - t_send, phase=phase
            )

    def _degrade(self, exc: Exception) -> None:
        """Fault the backend: tear the pool down, continue inline."""
        self._faulted = True
        self._fault_reason = str(exc)
        self._unadopt()
        self._finalizer()
        self._slabs.clear()
        self._epochs.clear()
        warnings.warn(
            "process backend faulted; continuing inline on the simulated "
            f"backend ({exc})",
            RuntimeWarning,
            stacklevel=3,
        )

    def _usable(self, graph, state=None) -> bool:
        """Dispatch only plain CSR graphs / states (fault-injection wrappers
        and subclasses evaluate inline, like the sweep kernel does)."""
        if self._faulted or self._closed:
            return False
        if type(graph) is not CSRGraph:
            return False
        if state is not None and type(state) is not ClusterState:
            return False
        return True

    # ------------------------------------------------------------------
    # phase entry points
    # ------------------------------------------------------------------
    def batch_moves(
        self,
        graph,
        state,
        batch: np.ndarray,
        resolution: float,
        *,
        allow_escape: bool = True,
        swap_avoidance: bool = False,
        kernel: str = "vectorized",
        instr=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        def inline():
            return get_kernel(kernel).batch_moves(
                graph,
                state,
                batch,
                resolution,
                allow_escape=allow_escape,
                swap_avoidance=swap_avoidance,
                instr=instr,
            )

        if not self._usable(graph, state):
            return inline()
        size = batch.size
        degs = graph.offsets[batch + 1] - graph.offsets[batch]
        if size + int(degs.sum()) < self.min_dispatch:
            self._inline_small += 1
            return inline()
        try:
            meta = self._epoch(graph)
            self._adopt_state(state)
            ids_name, ids = self._slab("ids", np.int64, max(size, graph.num_vertices))
            out_t_name, out_t = self._slab("out_t", np.int64, ids.size)
            out_g_name, out_g = self._slab("out_g", np.float64, ids.size)
            ids[:size] = batch
            meta = dict(
                meta,
                s_asn=self._slabs["s_asn"][0],
                s_cw=self._slabs["s_cw"][0],
                s_cs=self._slabs["s_cs"][0],
                ids=ids_name,
                ids_cap=ids.size,
                out_t=out_t_name,
                out_g=out_g_name,
            )
            tasks = [
                (
                    wid,
                    (
                        "moves",
                        meta,
                        lo,
                        hi,
                        resolution,
                        allow_escape,
                        swap_avoidance,
                        kernel,
                    ),
                )
                for wid, lo, hi in self._shards(size)
            ]
            self._dispatch(tasks, "moves", instr=instr)
            return out_t[:size].copy(), out_g[:size].copy()
        except _WorkerFailure as exc:
            self._degrade(exc)
            return inline()

    def gather_neighbors(self, graph, ids: np.ndarray, instr=None) -> np.ndarray:
        """Concatenated neighbors of ``ids`` (sparse EDGEMAP gather).

        Returns a view of a reusable slab — valid until the next backend
        call; callers consume it immediately (``np.unique`` dedup).
        """
        def inline():
            edge_idx, _ = ragged_gather_indices(graph.offsets, ids)
            return graph.neighbors[edge_idx]

        if not self._usable(graph):
            return inline()
        size = ids.size
        degs = graph.offsets[ids + 1] - graph.offsets[ids]
        deg_sum = int(degs.sum())
        if size + deg_sum < self.min_dispatch:
            self._inline_small += 1
            return inline()
        try:
            meta = self._epoch(graph)
            ids_name, ids_slab = self._slab(
                "ids", np.int64, max(size, graph.num_vertices)
            )
            edge_name, edge_slab = self._slab(
                "edge_a", np.int64, max(deg_sum, meta["m"])
            )
            ids_slab[:size] = ids
            prefix = np.zeros(size + 1, dtype=np.int64)
            np.cumsum(degs, out=prefix[1:])
            meta = dict(
                meta,
                ids=ids_name,
                ids_cap=ids_slab.size,
                edge_a=edge_name,
                edge_cap=edge_slab.size,
            )
            tasks = [
                (wid, ("nbrs", meta, lo, hi, int(prefix[lo])))
                for wid, lo, hi in self._shards(size)
            ]
            self._dispatch(tasks, "frontier", instr=instr)
            return edge_slab[:deg_sum]
        except _WorkerFailure as exc:
            self._degrade(exc)
            return inline()

    def map_to_super(
        self, graph, vertex_to_super: np.ndarray, instr=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(csrc, cdst)`` per directed edge — compression key construction.

        Returns views of reusable slabs — valid until the next backend
        call; ``_compress`` consumes them within the same expression
        block.
        """
        def inline():
            n = graph.num_vertices
            src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
            return vertex_to_super[src], vertex_to_super[graph.neighbors]

        if not self._usable(graph):
            return inline()
        m = graph.neighbors.size
        if m < self.min_dispatch:
            self._inline_small += 1
            return inline()
        try:
            meta = self._epoch(graph)
            n = graph.num_vertices
            map_name, map_slab = self._slab("map", np.int64, n)
            a_name, a_slab = self._slab("edge_a", np.int64, m)
            b_name, b_slab = self._slab("edge_b", np.int64, m)
            map_slab[:n] = vertex_to_super
            meta = dict(
                meta,
                map=map_name,
                ids_cap=map_slab.size,
                edge_a=a_name,
                edge_b=b_name,
                edge_cap=max(a_slab.size, b_slab.size),
            )
            # edge_cap must describe each slab's own capacity; they can
            # differ after independent growth, so resize to match.
            if a_slab.size != b_slab.size:
                cap = max(a_slab.size, b_slab.size)
                a_name, a_slab = self._slab("edge_a", np.int64, cap)
                b_name, b_slab = self._slab("edge_b", np.int64, cap)
                meta["edge_a"] = a_name
                meta["edge_b"] = b_name
                meta["edge_cap"] = a_slab.size
            tasks = [
                (wid, ("super", meta, lo, hi))
                for wid, lo, hi in self._shards(m)
            ]
            self._dispatch(tasks, "compress", instr=instr)
            return a_slab[:m], b_slab[:m]
        except _WorkerFailure as exc:
            self._degrade(exc)
            return inline()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._unadopt()
        self._slabs.clear()
        self._epochs.clear()
        self._finalizer()

    def stats(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "dispatches": self._dispatches,
            "inline_small": self._inline_small,
            "bytes_shared": self._bytes_shared,
            "faulted": self._faulted,
            "fault_reason": self._fault_reason,
        }
