"""Execution-backend interface: who actually runs the parallel phases.

The simulated scheduler (:mod:`repro.parallel.scheduler`) decides what the
parallel phases *cost*; an :class:`ExecutionBackend` decides what actually
*executes* them.  The two are deliberately orthogonal: every backend must
produce bit-identical results (targets, gains, assignments, and therefore
``f_objective``) and the cost model is charged identically regardless of
backend, so ``sim_time_seconds`` never depends on the executor.

Two backends are registered (DESIGN.md §13):

* ``simulated`` — the default: phases run inline in the parent process,
  exactly as every PR before this one ran them;
* ``process``   — a persistent ``multiprocessing`` worker pool over
  ``multiprocessing.shared_memory``: CSR arrays and cluster state are
  attached zero-copy as numpy views and the embarrassingly-parallel
  phases (batch-window move evaluation, frontier gathers, compression
  key construction) fan out over contiguous shards.

Backends ride the scheduler (``sched.backend``) through the same conduit
``sched.faults`` and ``sched.instr`` use, so the five BEST-MOVES engines
need no signature changes.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

#: Registered backend names, importable without pulling in multiprocessing.
BACKEND_NAMES = ("simulated", "process")


def resolve_workers(requested: Optional[int], machine=None) -> int:
    """Resolve a worker count request to a concrete pool size.

    ``requested`` of ``None`` or ``0`` means *auto*: use ``os.cpu_count()``
    capped by the machine profile's ``max_workers`` (a pool wider than the
    modeled machine would make the wall clock disagree with the cost model
    in the wrong direction).  Explicit positive requests are honoured
    as-is — oversubscription is the caller's informed choice.
    """
    if requested is not None and requested > 0:
        return int(requested)
    auto = os.cpu_count() or 1
    if machine is not None:
        auto = min(auto, machine.max_workers)
    return max(1, int(auto))


class ExecutionBackend:
    """Executor for the embarrassingly-parallel phases of one run.

    Contract: every method is *bit-identical* to the inline numpy path —
    same dtypes, same values, same ordering.  The process backend meets
    this by sharding work into contiguous ranges whose per-element results
    depend only on shared read-only snapshots, then concatenating shard
    outputs in range order (DESIGN.md §13).
    """

    #: Registry name ("simulated" / "process").
    name: str = "base"
    #: True when phases run inline in the parent; the dispatch sites skip
    #: the backend entirely for inline backends, keeping the default path
    #: free of new work (the <3% disabled-overhead gate).
    inline: bool = True
    #: Real OS workers executing phases (1 for inline backends).
    workers: int = 1

    # ------------------------------------------------------------------
    # phase entry points
    # ------------------------------------------------------------------
    def batch_moves(
        self,
        graph,
        state,
        batch: np.ndarray,
        resolution: float,
        *,
        allow_escape: bool = True,
        swap_avoidance: bool = False,
        kernel: str = "vectorized",
        instr=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, gains)`` for ``batch`` — see ``MoveKernel.batch_moves``."""
        raise NotImplementedError

    def gather_neighbors(self, graph, ids: np.ndarray) -> np.ndarray:
        """``graph.neighbors[ragged_gather(ids)]`` — the sparse EDGEMAP gather."""
        raise NotImplementedError

    def map_to_super(
        self, graph, vertex_to_super: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(csrc, cdst)`` per directed edge — compression key construction."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release pool processes and shared segments (idempotent)."""

    def stats(self) -> dict:
        """Summary for ``result.extras['backend']`` (JSON-safe)."""
        return {"name": self.name, "workers": self.workers}

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
