"""The inline (simulated-machine) execution backend — the default.

Everything runs in the parent process exactly as before the backend layer
existed; the class exists so selection, stats reporting, and the
supervisor's fallback rung have a uniform object to hold.  Dispatch sites
check :attr:`ExecutionBackend.inline` and skip the backend entirely, so
the default path pays nothing for the abstraction (the <3% overhead gate
in ``benchmarks/bench_backend.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels import get_kernel
from repro.parallel.backend.base import ExecutionBackend
from repro.parallel.primitives import ragged_gather_indices


class SimulatedBackend(ExecutionBackend):
    """Inline execution on the simulated machine (bit-identical baseline)."""

    name = "simulated"
    inline = True
    workers = 1

    def batch_moves(
        self,
        graph,
        state,
        batch: np.ndarray,
        resolution: float,
        *,
        allow_escape: bool = True,
        swap_avoidance: bool = False,
        kernel: str = "vectorized",
        instr=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return get_kernel(kernel).batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    def gather_neighbors(self, graph, ids: np.ndarray) -> np.ndarray:
        edge_idx, _ = ragged_gather_indices(graph.offsets, ids)
        return graph.neighbors[edge_idx]

    def map_to_super(self, graph, vertex_to_super: np.ndarray):
        n = graph.num_vertices
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
        return vertex_to_super[src], vertex_to_super[graph.neighbors]
