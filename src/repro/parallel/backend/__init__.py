"""Execution backends: who runs the parallel phases (DESIGN.md §13).

``create_backend`` resolves a :class:`ClusteringConfig`'s ``backend``
field to a live :class:`ExecutionBackend`.  An unavailable process
backend (no ``/dev/shm``, restricted start methods, pool start failure)
degrades to the simulated backend with a single ``RuntimeWarning``
instead of raising — selection is a performance choice, never a
correctness one, because every backend is bit-identical.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.errors import ConfigError
from repro.parallel.backend.base import (
    BACKEND_NAMES,
    ExecutionBackend,
    resolve_workers,
)
from repro.parallel.backend.process import BackendUnavailable, ProcessBackend
from repro.parallel.backend.simulated import SimulatedBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ExecutionBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "create_backend",
    "resolve_workers",
]


def create_backend(
    name: str,
    workers: int = 0,
    machine=None,
    **process_options,
) -> ExecutionBackend:
    """Instantiate the named backend, falling back to ``simulated``.

    ``workers`` follows :func:`resolve_workers` semantics (0 = auto via
    ``os.cpu_count()`` capped by the machine profile).  Extra keyword
    options are forwarded to the process backend (e.g. ``start_method``,
    ``min_dispatch``, the chaos hooks).
    """
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"backend must be one of {list(BACKEND_NAMES)}, got {name!r}"
        )
    if name == "process":
        try:
            return ProcessBackend(workers=workers, machine=machine, **process_options)
        except BackendUnavailable as exc:
            warnings.warn(
                f"process backend unavailable, using simulated: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return SimulatedBackend()
