"""Parallel sorting and semisorting with work/depth accounting.

The paper's key engineering win over NetworKit is a *work-efficient*
parallel graph-compression step: intra-cluster edges are aggregated "in
polylogarithmic depth with an efficient parallel sort" (Section 4.2).  We
model a parallel sample sort — work O(n log n), depth O(log^2 n) — and an
integer semisort for key aggregation — work O(n), depth O(log n) w.h.p.
(GBBS follows Gu–Shun–Sun–Blelloch semisort).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np


def _log2(n: int) -> float:
    return max(1.0, math.log2(max(n, 2)))


def parallel_sample_sort(
    keys: np.ndarray, sched=None, label: str = "sample-sort"
) -> np.ndarray:
    """Return the argsort of ``keys``; charged as a parallel sample sort."""
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    if sched is not None:
        n = keys.size
        sched.charge(work=float(n) * _log2(n), depth=_log2(n) ** 2, label=label)
    return order


def parallel_semisort_aggregate(
    keys: np.ndarray,
    weights: np.ndarray,
    sched=None,
    label: str = "semisort",
) -> Tuple[np.ndarray, np.ndarray]:
    """Group equal integer keys and sum their weights.

    Returns ``(unique_keys, summed_weights)`` with ``unique_keys`` sorted.
    Charged as a parallel semisort: work O(n), depth O(log n) w.h.p.
    This is the aggregation kernel of the work-efficient PARALLEL-COMPRESS.
    """
    keys = np.asarray(keys, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if keys.shape != weights.shape:
        raise ValueError(f"keys {keys.shape} and weights {weights.shape} must match")
    if keys.size == 0:
        return keys.copy(), weights.copy()
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=unique_keys.size)
    if sched is not None:
        sched.charge(work=float(keys.size), depth=_log2(keys.size), label=label)
    return unique_keys, sums


def naive_group_aggregate(
    keys: np.ndarray,
    weights: np.ndarray,
    num_groups: int,
    sched=None,
    label: str = "naive-aggregate",
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregation by per-group scans — the *non*-work-efficient variant.

    Models how an implementation without a parallel semisort (the paper's
    characterization of NetworKit's compression step) aggregates edges:
    every group scans the full key array, so work is O(num_groups * n) in
    the worst case; we charge a calibrated surrogate O(n * log(num_groups))
    + O(num_groups) with linear depth per group batch, which is enough to
    reproduce the 1.9x average end-to-end gap (Figure 17) without being
    absurd.  The *returned values* are identical to the efficient variant.
    """
    unique_keys, sums = parallel_semisort_aggregate(keys, weights, sched=None)
    if sched is not None:
        n = keys.size
        sched.charge(
            work=float(n) * max(1.0, _log2(max(num_groups, 2))) * 2.0,
            depth=float(max(num_groups, 1)) ** 0.5 + _log2(n),
            label=label,
        )
    return unique_keys, sums


def parallel_integer_sort(
    keys: np.ndarray,
    max_key: Optional[int] = None,
    sched=None,
    label: str = "int-sort",
) -> np.ndarray:
    """Argsort of small-universe integer keys (parallel radix/counting sort).

    Work O(n + range), depth O(log n).
    """
    keys = np.asarray(keys, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    if sched is not None:
        rng = (max_key if max_key is not None else (int(keys.max()) + 1 if keys.size else 1))
        sched.charge(work=float(keys.size + rng), depth=_log2(keys.size), label=label)
    return order
