"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed (bad edges, shapes, weights)."""


class ConfigError(ReproError):
    """Raised when a clustering configuration is invalid or inconsistent."""


class SchedulerError(ReproError):
    """Raised on misuse of the simulated parallel scheduler."""


class CircuitError(ReproError):
    """Raised when a monotone circuit definition is malformed."""


class InvariantViolation(ReproError):
    """Raised when a :class:`~repro.resilience.audit.StateAuditor` finds a
    clustering state whose maintained aggregates diverge from its
    assignments (the concurrency hazards of Section 3.2.1)."""


class TransientFault(ReproError):
    """An injected transient failure (fault-injection only).

    Engines retry a bounded number of times with exponential backoff on
    this error before degrading the run.
    """


class BudgetExhausted(ReproError):
    """Raised when a :class:`~repro.resilience.guards.RunBudget` limit is
    hit under ``strict`` resilience policy (non-strict runs degrade
    gracefully instead of raising)."""


class WatchdogTimeout(BudgetExhausted):
    """Raised when a supervisor watchdog wall-clock deadline (whole-run or
    per-level) fires under ``strict`` resilience policy; graceful runs
    degrade and return best-so-far instead of raising."""


class SupervisorExhausted(ReproError):
    """Raised when the :class:`~repro.supervisor.RunSupervisor` exhausts
    every retry and fallback rung without obtaining any clustering result
    (the salvage run itself failed)."""


class CheckpointError(ReproError):
    """Raised when a checkpoint file is missing, corrupt, or was written
    by an incompatible configuration."""


class UpdateError(ReproError):
    """Raised when a dynamic edge update cannot be applied: unknown
    operation, self-loop update, deleting or reweighting an edge that does
    not exist, or a malformed update-log line."""


class ServerClosedError(ReproError):
    """Raised when an op is invoked on a :class:`~repro.dynamic.serve.ClusterServer`
    (or serving gateway) after ``close()``.  Closing is idempotent —
    double-close and re-``__exit__`` are no-ops — but query/stage/commit/
    save/audit on a closed server raise this instead of surfacing an
    obscure backend failure from the released clusterer."""


class SnapshotError(CheckpointError):
    """Raised when a dynamic-clusterer snapshot is missing, corrupt, or
    incompatible with the restoring configuration.  Subclasses
    :class:`CheckpointError` so supervisor-style fall-back-to-elder-slot
    handling applies unchanged."""
