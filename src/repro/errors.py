"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed (bad edges, shapes, weights)."""


class ConfigError(ReproError):
    """Raised when a clustering configuration is invalid or inconsistent."""


class SchedulerError(ReproError):
    """Raised on misuse of the simulated parallel scheduler."""


class CircuitError(ReproError):
    """Raised when a monotone circuit definition is malformed."""
