"""Immutable label epochs: the snapshot-isolation layer (DESIGN.md §14).

At every commit the gateway copies the clusterer's assignment array into
a fresh read-only :class:`LabelEpoch` and publishes it with one atomic
reference assignment.  Reads resolve the current epoch once at service
time and then work entirely against that immutable object — they can
never observe a half-applied batch, and a commit never waits for an
in-flight read.  This is copy-on-write at batch granularity: one array
copy per commit, zero copies per read.

Each epoch carries a sha1 digest of the raw label bytes; the sequence of
per-epoch digests is what the serving equivalence gate compares against
a serial replay of the same coalesced batches.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.errors import UpdateError

__all__ = ["LabelEpoch", "label_digest"]


def label_digest(assignments: np.ndarray) -> str:
    """sha1 hex digest of the raw int64 label bytes (bit-identity key)."""
    arr = np.ascontiguousarray(assignments, dtype=np.int64)
    return hashlib.sha1(arr.tobytes()).hexdigest()


class LabelEpoch:
    """One published, immutable snapshot of the partition.

    The assignment array is copied on construction and marked read-only;
    any attempt to mutate it through the epoch raises at the numpy layer.
    Epoch 0 is the bootstrap partition; epoch ``k`` is the state after
    the gateway's ``k``-th committed batch.
    """

    __slots__ = (
        "index",
        "_assignments",
        "num_clusters",
        "f_objective",
        "digest",
        "published_at",
        "batch_updates",
    )

    def __init__(
        self,
        index: int,
        assignments: np.ndarray,
        *,
        f_objective: float = 0.0,
        published_at: float = 0.0,
        batch_updates: int = 0,
    ) -> None:
        arr = np.array(assignments, dtype=np.int64, copy=True)
        arr.setflags(write=False)
        self.index = int(index)
        self._assignments = arr
        self.num_clusters = int(np.unique(arr).size) if arr.size else 0
        self.f_objective = float(f_objective)
        self.digest = label_digest(arr)
        self.published_at = float(published_at)
        self.batch_updates = int(batch_updates)

    # -- read operations (the gateway's read kinds resolve here) ------- #

    @property
    def assignments(self) -> np.ndarray:
        """The read-only label array (no copy — it cannot be mutated)."""
        return self._assignments

    @property
    def num_vertices(self) -> int:
        return int(self._assignments.size)

    def cluster_of(self, u: int) -> int:
        if u < 0 or u >= self._assignments.size:
            raise UpdateError(
                f"vertex {u} out of range [0, {self._assignments.size})"
            )
        return int(self._assignments[u])

    def same(self, u: int, v: int) -> bool:
        """Do ``u`` and ``v`` share a cluster in this epoch?"""
        return self.cluster_of(u) == self.cluster_of(v)

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self._assignments == int(cluster)).astype(np.int64)

    def stats(self) -> dict:
        return {
            "epoch": self.index,
            "num_vertices": self.num_vertices,
            "num_clusters": self.num_clusters,
            "f_objective": self.f_objective,
            "digest": self.digest,
            "batch_updates": self.batch_updates,
        }

    def serve(self, kind: str, args: tuple) -> object:
        """Dispatch one read kind against this snapshot."""
        if kind == "cluster_of":
            return self.cluster_of(*args)
        if kind == "same":
            return self.same(*args)
        if kind == "members":
            return self.members(*args)
        if kind == "stats":
            return self.stats()
        raise UpdateError(f"unknown read kind {kind!r}")

    def __repr__(self) -> str:
        return (
            f"LabelEpoch(index={self.index}, n={self.num_vertices}, "
            f"clusters={self.num_clusters}, digest={self.digest[:10]})"
        )
