"""Deterministic multi-client workload generation for the gateway.

A :class:`WorkloadSpec` describes a mixed read/write request stream:

* **open-loop** arrivals — exponential inter-arrival times at ``rate``
  requests/second, the classic offered-load model (clients do not wait
  for responses, so queues actually build and shedding engages);
* **closed-loop** arrivals — ``clients`` logical clients that each
  submit, think for ``think_seconds``, and submit again (load is
  self-limiting at ``clients / (service + think)``).

Generation is a pure function of the spec (seeded
:func:`~repro.utils.rng.make_rng`), so both drivers — and the serial
replay the equivalence gate compares against — see the identical
request sequence.  Writes deliberately include a small fraction of
deletes/reweights of edges that may be absent, exercising the gateway's
``rejected`` path; reads draw uniformly from the four read kinds over
random vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dynamic.updates import EdgeUpdate
from repro.errors import UpdateError
from repro.serving.requests import READ_KINDS, Request
from repro.utils.rng import make_rng

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One reproducible mixed read/write request stream."""

    num_requests: int = 500
    #: Fraction of requests that are reads (the rest are writes).
    read_fraction: float = 0.9
    #: ``"open"`` (Poisson arrivals at ``rate``/s) or ``"closed"``.
    arrival: str = "open"
    #: Offered load in requests/second (open-loop only).
    rate: float = 2000.0
    #: Logical clients (closed-loop only).
    clients: int = 8
    #: Per-client think time between requests (closed-loop only).
    think_seconds: float = 0.002
    #: Absolute read deadline = arrival + this (0 = no deadline).
    read_deadline_seconds: float = 0.0
    #: Fraction of writes that are deletes (may target absent edges).
    delete_fraction: float = 0.15
    #: Fraction of writes that are reweights (may target absent edges).
    reweight_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("open", "closed"):
            raise UpdateError(
                f"arrival must be 'open' or 'closed', got {self.arrival!r}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise UpdateError("read_fraction must be in [0, 1]")
        if self.num_requests < 0:
            raise UpdateError("num_requests must be >= 0")
        if self.arrival == "open" and self.rate <= 0:
            raise UpdateError("open-loop rate must be positive")
        if self.arrival == "closed" and self.clients < 1:
            raise UpdateError("closed-loop needs >= 1 client")

    # ------------------------------------------------------------------ #

    def _arrival_times(self, rng) -> List[float]:
        if self.arrival == "open":
            gaps = rng.exponential(1.0 / self.rate, size=self.num_requests)
            times, now = [], 0.0
            for gap in gaps:
                now += float(gap)
                times.append(now)
            return times
        # Closed loop: round-robin clients, each pacing itself.  The
        # driver still treats these as scheduled arrivals — think time
        # models the client-side gap, which is what bounds offered load.
        per_client = [0.0] * self.clients
        times = []
        for i in range(self.num_requests):
            c = i % self.clients
            jitter = float(rng.exponential(self.think_seconds or 1e-4))
            per_client[c] += jitter
            times.append(per_client[c])
        return sorted(times)

    def generate(self, num_vertices: int) -> List[Request]:
        """The request stream for a graph of ``num_vertices`` vertices.

        Returned in arrival order with ``submitted_at`` stamped in
        workload seconds (virtual for the simulated driver; the threaded
        driver uses them as submission offsets).
        """
        if num_vertices < 2:
            raise UpdateError("workload needs a graph with >= 2 vertices")
        rng = make_rng(self.seed)
        times = self._arrival_times(rng)
        requests: List[Request] = []
        for i, at in enumerate(times):
            client = f"c{i % max(1, self.clients)}"
            if rng.random() < self.read_fraction:
                kind = READ_KINDS[int(rng.integers(0, len(READ_KINDS)))]
                if kind == "cluster_of":
                    args = (int(rng.integers(0, num_vertices)),)
                elif kind == "same":
                    args = (
                        int(rng.integers(0, num_vertices)),
                        int(rng.integers(0, num_vertices)),
                    )
                elif kind == "members":
                    args = (int(rng.integers(0, num_vertices)),)
                else:
                    args = ()
                deadline = (
                    at + self.read_deadline_seconds
                    if self.read_deadline_seconds > 0
                    else None
                )
                requests.append(
                    Request.read(
                        i,
                        kind,
                        *args,
                        client=client,
                        submitted_at=at,
                        deadline=deadline,
                    )
                )
            else:
                u = int(rng.integers(0, num_vertices))
                v = int(rng.integers(0, num_vertices))
                if u == v:
                    v = (v + 1) % num_vertices
                roll = rng.random()
                if roll < self.delete_fraction:
                    upd = EdgeUpdate("delete", u, v)
                elif roll < self.delete_fraction + self.reweight_fraction:
                    upd = EdgeUpdate(
                        "reweight", u, v, float(rng.uniform(0.5, 2.0))
                    )
                else:
                    upd = EdgeUpdate(
                        "insert", u, v, float(rng.uniform(0.5, 1.5))
                    )
                requests.append(
                    Request.write(
                        i, upd, client=client, submitted_at=at
                    )
                )
        return requests

    def describe(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "read_fraction": self.read_fraction,
            "arrival": self.arrival,
            "rate": self.rate if self.arrival == "open" else None,
            "clients": self.clients,
            "think_seconds": self.think_seconds,
            "read_deadline_seconds": self.read_deadline_seconds,
            "seed": self.seed,
        }
