"""Request/response vocabulary of the serving gateway (DESIGN.md §14).

A :class:`Request` is one client operation: a **read** (``cluster_of`` /
``same`` / ``members`` / ``stats`` — answered against an immutable
:class:`~repro.serving.epoch.LabelEpoch`, never blocking on writes) or a
**write** (one staged :class:`~repro.dynamic.updates.EdgeUpdate` —
coalesced with every other staged write into one
:class:`~repro.dynamic.updates.UpdateBatch` per refinement cycle).

Every submitted request produces exactly one :class:`Response` whose
``status`` says what happened to it — the no-silent-drops contract the
equivalence gate audits:

``ok``
    Served (reads) or committed (writes) — ``value``/``epoch`` hold the
    answer and the label epoch it came from.
``shed``
    Load-shed at admission: the request's class queue was full.
    ``retry_after`` tells the client when to try again.
``expired``
    A read whose deadline passed before a server picked it up; dropped
    without evaluation (stale answers are worse than none).
``rejected``
    A write whose operation was semantically invalid against the state
    it would have committed into (delete/reweight of an absent edge);
    excluded from the coalesced batch with the error message attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dynamic.updates import EdgeUpdate
from repro.errors import UpdateError

#: Read operations a request may carry.
READ_KINDS = ("cluster_of", "same", "members", "stats")

#: Request classes (the admission-control queues).
CLASSES = ("read", "write")

#: Terminal response statuses (every submitted request lands on one).
STATUSES = ("ok", "shed", "expired", "rejected")


@dataclass(frozen=True)
class Request:
    """One client operation submitted to the gateway.

    ``deadline`` is an *absolute* timestamp on the driver's clock
    (virtual seconds for the simulated driver, ``perf_counter`` seconds
    for the threaded one); a read still queued past its deadline is
    dropped as ``expired``.  Writes carry no deadline — once admitted
    they are part of the next commit cycle.
    """

    request_id: int
    kind: str
    args: Tuple = ()
    update: Optional[EdgeUpdate] = None
    client: str = ""
    submitted_at: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind == "update":
            if self.update is None:
                raise UpdateError("write request needs an EdgeUpdate")
        elif self.kind not in READ_KINDS:
            raise UpdateError(
                f"unknown request kind {self.kind!r}; expected one of "
                f"{READ_KINDS + ('update',)}"
            )

    @property
    def klass(self) -> str:
        """``"read"`` or ``"write"``."""
        return "write" if self.kind == "update" else "read"

    @classmethod
    def read(
        cls,
        request_id: int,
        kind: str,
        *args: int,
        client: str = "",
        submitted_at: float = 0.0,
        deadline: Optional[float] = None,
    ) -> "Request":
        return cls(
            request_id=request_id,
            kind=kind,
            args=tuple(int(a) for a in args),
            client=client,
            submitted_at=submitted_at,
            deadline=deadline,
        )

    @classmethod
    def write(
        cls,
        request_id: int,
        update: EdgeUpdate,
        *,
        client: str = "",
        submitted_at: float = 0.0,
    ) -> "Request":
        return cls(
            request_id=request_id,
            kind="update",
            update=update,
            client=client,
            submitted_at=submitted_at,
        )


@dataclass
class Response:
    """The gateway's answer to one request (exactly one per submit)."""

    request_id: int
    klass: str
    status: str
    value: object = None
    #: Label epoch a read was answered from / a write was committed into.
    epoch: Optional[int] = None
    #: Completion latency in driver-clock seconds (service end - submit).
    latency: float = 0.0
    #: Back-off hint attached to ``shed`` responses.
    retry_after: Optional[float] = None
    #: Error message attached to ``rejected`` responses.
    error: Optional[str] = None
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict:
        out = {
            "request_id": self.request_id,
            "class": self.klass,
            "status": self.status,
            "epoch": self.epoch,
            "latency": self.latency,
        }
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        if self.error is not None:
            out["error"] = self.error
        return out
