"""Multi-client serving gateway over the dynamic clusterer (DESIGN.md §14).

Layers, bottom up:

* :mod:`repro.serving.epoch` — immutable published label snapshots
  (:class:`LabelEpoch`): the snapshot-isolation mechanism;
* :mod:`repro.serving.requests` — the request/response vocabulary and
  the four terminal statuses (ok/shed/expired/rejected);
* :mod:`repro.serving.gateway` — :class:`ServingGateway`: write
  coalescing, commit-time validation, admission accounting, and the
  committed-batch log the equivalence gate replays;
* :mod:`repro.serving.drivers` — the deterministic simulated-clock
  driver and the real-thread driver;
* :mod:`repro.serving.workload` — seeded mixed read/write workload
  generation (open/closed-loop arrivals);
* :mod:`repro.serving.bench` — the PR10 gateway-vs-serial bench.
"""

from repro.serving.drivers import DriverResult, SimulatedDriver, ThreadedDriver
from repro.serving.epoch import LabelEpoch, label_digest
from repro.serving.gateway import GatewayPolicy, ServingGateway, replay_digests
from repro.serving.requests import Request, Response
from repro.serving.workload import WorkloadSpec

__all__ = [
    "DriverResult",
    "GatewayPolicy",
    "LabelEpoch",
    "Request",
    "Response",
    "ServingGateway",
    "SimulatedDriver",
    "ThreadedDriver",
    "WorkloadSpec",
    "label_digest",
    "replay_digests",
]
