"""Gateway drivers: deterministic simulated clock + real threads.

The gateway core (:mod:`repro.serving.gateway`) is synchronous and
time-free; drivers own the clock and the interleaving:

* :class:`SimulatedDriver` — a single-threaded discrete-event loop on a
  virtual clock.  Read service, commit cost, and arrival times are all
  modeled seconds, so every run is bit-reproducible: same workload +
  policy → same interleaving → same responses, shed set, and committed
  batch sequence.  ``serial_baseline=True`` degrades it to the old
  ``ClusterServer`` discipline (one lane, reads queue behind commits) —
  the contrast the serving bench measures.
* :class:`ThreadedDriver` — real client threads submitting against the
  wall clock with a single commit thread as the sole clusterer mutator.
  Snapshot isolation makes reads lock-free (one atomic epoch-reference
  read); admission counters take the gateway lock.

Both produce a :class:`DriverResult` with full per-status accounting —
the no-silent-drops invariant (every generated request has exactly one
terminal response) is asserted by :meth:`DriverResult.check_accounting`.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import UpdateError
from repro.serving.gateway import ServingGateway
from repro.serving.requests import Request, Response, STATUSES

__all__ = ["DriverResult", "SimulatedDriver", "ThreadedDriver"]


@dataclass
class DriverResult:
    """Everything one driver run produced."""

    driver: str
    responses: List[Response] = field(default_factory=list)
    #: Virtual (sim) or wall (threads) seconds from first arrival to the
    #: last event processed.
    makespan: float = 0.0
    num_requests: int = 0

    def by_status(self) -> Dict[str, Dict[str, int]]:
        out = {
            klass: {s: 0 for s in STATUSES} for klass in ("read", "write")
        }
        for resp in self.responses:
            out[resp.klass][resp.status] += 1
        return out

    def latencies(self, klass: str = "read", status: str = "ok") -> np.ndarray:
        vals = [
            r.latency
            for r in self.responses
            if r.klass == klass and r.status == status
        ]
        return np.asarray(vals, dtype=np.float64)

    def check_accounting(self, gateway: ServingGateway) -> List[str]:
        """No-silent-drops audit; returns human-readable violations."""
        issues: List[str] = []
        if len(self.responses) != self.num_requests:
            issues.append(
                f"{self.num_requests} requests submitted but "
                f"{len(self.responses)} responses produced"
            )
        seen = {r.request_id for r in self.responses}
        if len(seen) != len(self.responses):
            issues.append("duplicate terminal responses for one request")
        counts = self.by_status()
        stats = gateway.stats()["requests"]
        for klass in ("read", "write"):
            resolved = sum(counts[klass].values())
            if stats[klass]["submitted"] != resolved:
                issues.append(
                    f"{klass}: submitted {stats[klass]['submitted']} != "
                    f"resolved {resolved}"
                )
            for status in STATUSES:
                if stats[klass][status] != counts[klass][status]:
                    issues.append(
                        f"{klass}/{status}: gateway counted "
                        f"{stats[klass][status]}, driver saw "
                        f"{counts[klass][status]}"
                    )
        if gateway.staged_count:
            issues.append(f"{gateway.staged_count} writes left staged")
        return issues

    def summary(self) -> dict:
        counts = self.by_status()
        read_lat = self.latencies("read", "ok")
        write_lat = self.latencies("write", "ok")
        ok_reads = counts["read"]["ok"]
        return {
            "driver": self.driver,
            "num_requests": self.num_requests,
            "makespan_seconds": self.makespan,
            "counts": counts,
            "read_throughput_rps": (
                ok_reads / self.makespan if self.makespan > 0 else 0.0
            ),
            "read_p50_seconds": (
                float(np.percentile(read_lat, 50)) if read_lat.size else None
            ),
            "read_p95_seconds": (
                float(np.percentile(read_lat, 95)) if read_lat.size else None
            ),
            "write_p95_seconds": (
                float(np.percentile(write_lat, 95)) if write_lat.size else None
            ),
        }


# ---------------------------------------------------------------------- #
# Simulated clock
# ---------------------------------------------------------------------- #

# Event kinds, in tie-break priority at equal virtual time: reads that
# reached their start serve before a commit tick publishes a new epoch.
_EV_READ_START = 0
_EV_COMMIT = 1
_EV_ARRIVE = 2


class SimulatedDriver:
    """Deterministic discrete-event execution of one workload.

    ``serial_baseline=True`` models the pre-gateway ``ClusterServer``:
    one service lane shared by reads *and* commits, so every read queues
    behind every in-progress commit.  The default (gateway) mode gives
    reads ``policy.read_concurrency`` dedicated lanes and commits their
    own — snapshot isolation means they never wait on each other.
    """

    def __init__(self, serial_baseline: bool = False) -> None:
        self.serial_baseline = serial_baseline

    def run(
        self, gateway: ServingGateway, requests: Sequence[Request]
    ) -> DriverResult:
        policy = gateway.policy
        result = DriverResult(
            driver="serial-sim" if self.serial_baseline else "sim",
            num_requests=len(requests),
        )
        lanes = 1 if self.serial_baseline else policy.read_concurrency
        # Min-heap of per-lane free times (the read "server pool").
        servers = [0.0] * lanes
        heapq.heapify(servers)
        # Commit lane (gateway mode: commits never touch read lanes).
        commit_free = 0.0
        # Start times of admitted-but-not-yet-started reads (> now).
        waiting: List[float] = []
        seq = 0
        events = []
        for req in requests:
            events.append((req.submitted_at, _EV_ARRIVE, seq, req))
            seq += 1
        heapq.heapify(events)
        arrivals_left = len(requests)
        if arrivals_left:
            heapq.heappush(
                events,
                (policy.commit_interval_seconds, _EV_COMMIT, seq, None),
            )
            seq += 1
        makespan = 0.0

        while events:
            now, kind, _, payload = heapq.heappop(events)
            makespan = max(makespan, now)
            if kind == _EV_ARRIVE:
                arrivals_left -= 1
                req = payload
                gateway.note_submit(req)
                if req.klass == "write":
                    resp = gateway.stage_write(req, now)
                    if resp is not None:
                        result.responses.append(resp)
                    continue
                # Read admission: shed on queue depth, then expire on
                # deadline, then reserve a lane and schedule the start.
                while waiting and waiting[0] <= now:
                    heapq.heappop(waiting)
                gateway.observe_queue_depth("read", len(waiting))
                if len(waiting) >= policy.read_queue_limit:
                    result.responses.append(gateway.shed(req, now))
                    continue
                lane_free = heapq.heappop(servers)
                start = max(now, lane_free)
                if req.deadline is not None and start > req.deadline:
                    heapq.heappush(servers, lane_free)
                    result.responses.append(
                        gateway.expire(req, req.deadline)
                    )
                    continue
                heapq.heappush(servers, start + policy.read_service_seconds)
                heapq.heappush(waiting, start)
                heapq.heappush(events, (start, _EV_READ_START, seq, req))
                seq += 1
            elif kind == _EV_READ_START:
                # Serve against the epoch current at start; completion
                # (and latency) lands one modeled service time later.
                done = now + policy.read_service_seconds
                makespan = max(makespan, done)
                result.responses.append(gateway.serve_read(payload, done))
            else:  # _EV_COMMIT
                staged = gateway.staged_count
                if staged:
                    n = staged
                    if policy.max_batch_updates > 0:
                        n = min(n, policy.max_batch_updates)
                    if self.serial_baseline:
                        # The single lane absorbs the commit: every read
                        # admitted after this queues behind it.
                        lane_free = heapq.heappop(servers)
                        start = max(now, lane_free)
                        done = start + policy.commit_cost(n)
                        heapq.heappush(servers, done)
                    else:
                        start = max(now, commit_free)
                        done = start + policy.commit_cost(n)
                        commit_free = done
                    makespan = max(makespan, done)
                    result.responses.extend(gateway.commit(done))
                if arrivals_left or gateway.staged_count:
                    heapq.heappush(
                        events,
                        (
                            now + policy.commit_interval_seconds,
                            _EV_COMMIT,
                            seq,
                            None,
                        ),
                    )
                    seq += 1

        result.makespan = makespan
        return result


# ---------------------------------------------------------------------- #
# Real threads
# ---------------------------------------------------------------------- #


class ThreadedDriver:
    """Wall-clock execution: client threads + one commit thread.

    The commit thread is the *sole* clusterer mutator; client threads
    only stage writes and serve reads against published epochs, so the
    bit-identity guarantee is structural, not lock-discipline luck.
    ``time_scale`` compresses the workload's virtual arrival schedule
    (0 = submit as fast as possible).
    """

    def __init__(self, num_threads: int = 4, time_scale: float = 0.0) -> None:
        if num_threads < 1:
            raise UpdateError("ThreadedDriver needs >= 1 client thread")
        self.num_threads = num_threads
        self.time_scale = float(time_scale)

    def run(
        self, gateway: ServingGateway, requests: Sequence[Request]
    ) -> DriverResult:
        policy = gateway.policy
        result = DriverResult(driver="threads", num_requests=len(requests))
        responses = result.responses  # list.append is atomic under the GIL
        start_wall = time.perf_counter()
        stop = threading.Event()
        inflight_lock = threading.Lock()
        inflight = [0]

        def now() -> float:
            return time.perf_counter() - start_wall

        def commit_loop() -> None:
            while True:
                stopped = stop.wait(policy.commit_interval_seconds)
                if gateway.staged_count:
                    responses.extend(gateway.commit(now()))
                if stopped and not gateway.staged_count:
                    return

        def client_loop(my_requests: List[Request]) -> None:
            for req in my_requests:
                if self.time_scale > 0:
                    target = req.submitted_at * self.time_scale
                    delay = target - now()
                    if delay > 0:
                        time.sleep(delay)
                t = now()
                # Re-stamp onto the wall clock so latency/deadline math
                # is consistent with this driver's time base.
                budget = (
                    req.deadline - req.submitted_at
                    if req.deadline is not None
                    else None
                )
                req = replace(
                    req,
                    submitted_at=t,
                    deadline=(t + budget) if budget is not None else None,
                )
                gateway.note_submit(req)
                if req.klass == "write":
                    resp = gateway.stage_write(req, now())
                    if resp is not None:
                        responses.append(resp)
                    continue
                with inflight_lock:
                    depth = inflight[0]
                    gateway.observe_queue_depth("read", depth)
                    if depth >= policy.read_queue_limit:
                        responses.append(gateway.shed(req, now()))
                        continue
                    inflight[0] += 1
                try:
                    t_serve = now()
                    if req.deadline is not None and t_serve > req.deadline:
                        responses.append(gateway.expire(req, t_serve))
                    else:
                        responses.append(gateway.serve_read(req, t_serve))
                finally:
                    with inflight_lock:
                        inflight[0] -= 1

        shards: List[List[Request]] = [[] for _ in range(self.num_threads)]
        for i, req in enumerate(requests):
            shards[i % self.num_threads].append(req)
        committer = threading.Thread(target=commit_loop, name="gw-commit")
        committer.start()
        clients = [
            threading.Thread(
                target=client_loop, args=(shard,), name=f"gw-client-{i}"
            )
            for i, shard in enumerate(shards)
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        committer.join()
        result.makespan = now()
        return result
