"""Serving bench: gateway vs serial ClusterServer discipline (PR10).

The acceptance claim of the serving gateway (ISSUE 10): under a mixed
read/write workload, snapshot-isolated reads stop queueing behind update
commits, so read throughput and tail latency improve over the old
serial discipline — *without* giving up bit-identity of the committed
label sequence (checked in-suite by replaying the coalesced batches
serially through a fresh :class:`~repro.dynamic.clusterer.DynamicClusterer`).

Both sides run the deterministic simulated-clock driver on the *same*
generated workload with the same policy cost model; the only difference
is the lane discipline (``serial_baseline=True`` shares one lane between
reads and commits).  All comparable metrics are virtual-clock and thus
machine-stable; wall seconds ride along as info.  Two graph families
(LFR-like churn graph, planted partition) each get a gateway row and a
serial row, plus a ``read_speedup`` headline on the gateway row.

Writes ``BENCH_PR10.json`` via :class:`~repro.obs.bench.BenchSuite`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.generators.lfr import lfr_like_graph
from repro.generators.planted import planted_partition_graph
from repro.obs.bench import BenchSuite, time_callable
from repro.serving.drivers import SimulatedDriver
from repro.serving.gateway import GatewayPolicy, ServingGateway, replay_digests
from repro.serving.workload import WorkloadSpec

SERVING_RESOLUTION = 0.05

#: Acceptance gates asserted by ``benchmarks/bench_serving.py``.
TARGET_READ_SPEEDUP = 1.5

#: Guard used on every clusterer in the bench: pure-incremental (no
#: periodic recompute, no cascade escalation) so gateway and replay see
#: identical state machines.
BENCH_GUARD = dict(recompute_every=0, max_frontier_fraction=1.0)


def _families(seed: int):
    lfr = lfr_like_graph(600, mixing=0.2, seed=seed)
    planted = planted_partition_graph(
        num_vertices=500, intra_degree=8.0, inter_degree=1.0, seed=seed
    )
    return [("lfr", lfr.graph), ("planted", planted.graph)]


def _bootstrap_labels(graph, config: ClusteringConfig) -> np.ndarray:
    boot = DynamicClusterer.bootstrap(graph, config, engine="sequential")
    labels = boot.state.assignments.copy()
    boot.close()
    return labels


def serving_suite(
    num_requests: int = 600,
    read_fraction: float = 0.85,
    rate: float = 3000.0,
    seed: int = 7,
    repeats: Optional[int] = None,
) -> BenchSuite:
    """Run the gateway-vs-serial comparison; the suite behind BENCH_PR10."""
    policy = GatewayPolicy(
        read_queue_limit=64,
        write_queue_limit=512,
        commit_interval_seconds=0.05,
        read_service_seconds=0.001,
        commit_base_seconds=0.05,
        commit_per_update_seconds=0.001,
        read_concurrency=4,
        read_deadline_seconds=0.0,
    )
    workload = WorkloadSpec(
        num_requests=num_requests,
        read_fraction=read_fraction,
        arrival="open",
        rate=rate,
        seed=seed,
    )
    suite = BenchSuite(
        "PR10",
        meta={
            "workload": workload.describe(),
            "policy": {
                "read_queue_limit": policy.read_queue_limit,
                "write_queue_limit": policy.write_queue_limit,
                "commit_interval_seconds": policy.commit_interval_seconds,
                "read_service_seconds": policy.read_service_seconds,
                "commit_base_seconds": policy.commit_base_seconds,
                "commit_per_update_seconds": policy.commit_per_update_seconds,
                "read_concurrency": policy.read_concurrency,
            },
            "resolution": SERVING_RESOLUTION,
            "engine": "sequential",
            "target_read_speedup": TARGET_READ_SPEEDUP,
        },
    )

    for family, graph in _families(seed):
        config = ClusteringConfig(
            resolution=SERVING_RESOLUTION, parallel=False, seed=seed
        )
        labels0 = _bootstrap_labels(graph, config)
        requests = workload.generate(graph.num_vertices)

        def run_driver(serial: bool):
            clusterer = DynamicClusterer(
                graph,
                labels0.copy(),
                config,
                engine="sequential",
                guard=DriftGuard(**BENCH_GUARD),
            )
            gateway = ServingGateway(clusterer, policy)
            try:
                result = SimulatedDriver(serial_baseline=serial).run(
                    gateway, requests
                )
            finally:
                clusterer.close()
            return gateway, result

        (gw, gw_result), gw_timing = time_callable(
            lambda: run_driver(False), repeats=repeats, warmup=0
        )
        (_, serial_result), serial_timing = time_callable(
            lambda: run_driver(True), repeats=repeats, warmup=0
        )

        accounting = gw_result.check_accounting(gw)
        replayed = replay_digests(
            graph,
            labels0,
            config,
            gw.committed_batches(),
            engine="sequential",
            guard=DriftGuard(**BENCH_GUARD),
        )
        identical = replayed == gw.epoch_log

        gw_summary = gw_result.summary()
        serial_summary = serial_result.summary()
        gw_rps = gw_summary["read_throughput_rps"]
        serial_rps = serial_summary["read_throughput_rps"]
        suite.add_row(
            f"{family}-gateway",
            metrics={
                "read_p95_seconds": gw_summary["read_p95_seconds"] or 0.0,
                "read_speedup": gw_rps / serial_rps if serial_rps else 0.0,
            },
            read_throughput_rps=gw_rps,
            makespan_seconds=gw_summary["makespan_seconds"],
            counts=gw_summary["counts"],
            commits=len(gw.committed),
            epochs=gw.epoch.index,
            replay_identical=bool(identical),
            accounting_issues=accounting,
            wall_seconds=gw_timing.best,
        )
        suite.add_row(
            f"{family}-serial",
            metrics={
                "read_p95_seconds": serial_summary["read_p95_seconds"] or 0.0,
            },
            read_throughput_rps=serial_rps,
            makespan_seconds=serial_summary["makespan_seconds"],
            counts=serial_summary["counts"],
            wall_seconds=serial_timing.best,
        )
    return suite


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Serving gateway bench; writes BENCH_PR10.json"
    )
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--read-fraction", type=float, default=0.85)
    parser.add_argument("--rate", type=float, default=3000.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    suite = serving_suite(
        num_requests=args.requests,
        read_fraction=args.read_fraction,
        rate=args.rate,
        seed=args.seed,
        repeats=1,
    )
    path = suite.write(args.out)
    print(f"wrote {path}")
    for row in suite.rows:
        if row.key.endswith("-gateway"):
            print(
                "{}: read_speedup={:.2f}x  p95={:.4f}s  replay_identical={}".format(
                    row.key,
                    row.metrics["read_speedup"],
                    row.metrics["read_p95_seconds"],
                    row.info["replay_identical"],
                )
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
