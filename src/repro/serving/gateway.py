"""ServingGateway: snapshot reads + coalesced writes + admission control.

The gateway owns one :class:`~repro.dynamic.clusterer.DynamicClusterer`
and multiplexes many clients over it (DESIGN.md §14):

* **Snapshot isolation** — every commit publishes an immutable
  :class:`~repro.serving.epoch.LabelEpoch`; reads resolve the epoch
  reference once and never touch mutable state, so a read can neither
  block a commit nor observe a half-applied batch.
* **Write coalescing** — staged writes from all clients merge, in FIFO
  submission order, into one :class:`~repro.dynamic.updates.UpdateBatch`
  per commit cycle; one localized refinement (and one warm backend
  dispatch) amortizes over the whole batch.
* **Admission control** — per-class bounded queues: writes beyond
  ``write_queue_limit`` and reads beyond ``read_queue_limit`` are shed
  with a ``retry_after`` hint; reads still queued past their deadline
  are dropped as ``expired``.  Every submitted request resolves to
  exactly one terminal status, counted in
  :data:`~repro.obs.instrument.M_GATEWAY_REQUESTS` — no silent drops.

Commit-time validation walks the coalesced updates against a lazy
edge-weight cache mirroring ``DynamicClusterer._stage`` semantics:
deletes/reweights of an absent edge are ``rejected`` and *excluded* from
the batch, so ``apply()`` never raises mid-batch and the committed batch
log replays cleanly.  That filtered-batch log is the equivalence
artifact: replaying it serially through a fresh clusterer
(:func:`replay_digests`) must reproduce the gateway's per-epoch label
digests bit-identically, under any interleaving and any shedding.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ClusteringConfig
from repro.dynamic.clusterer import DriftGuard, DynamicClusterer
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.errors import UpdateError
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import (
    M_GATEWAY_BATCH,
    M_GATEWAY_EPOCH,
    M_GATEWAY_QUEUE,
    M_GATEWAY_REQUESTS,
    M_SERVE_LATENCY,
    NULL_INSTRUMENTATION,
    SERVE_LATENCY_BUCKETS,
)
from repro.serving.epoch import LabelEpoch, label_digest
from repro.serving.requests import CLASSES, Request, Response, STATUSES

__all__ = ["GatewayPolicy", "ServingGateway", "replay_digests"]


@dataclass(frozen=True)
class GatewayPolicy:
    """Admission-control limits and the simulated-clock cost model.

    The queue limits and deadlines govern both drivers; the
    ``*_seconds`` cost-model fields matter only to the simulated-clock
    driver (the threaded driver measures real time).
    """

    #: Reads allowed to wait for a server before shedding starts.
    read_queue_limit: int = 256
    #: Staged-but-uncommitted writes allowed before shedding starts.
    write_queue_limit: int = 1024
    #: Coalesced updates per commit; excess stays staged for the next
    #: cycle (0 = unbounded).
    max_batch_updates: int = 0
    #: Back-off hint attached to shed responses.
    retry_after_seconds: float = 0.05
    #: Default read deadline when the request carries none (0 = none).
    read_deadline_seconds: float = 0.0
    #: Virtual seconds between commit ticks (simulated driver) or real
    #: seconds between commit-thread cycles (threaded driver).
    commit_interval_seconds: float = 0.1
    #: Simulated service time of one read.
    read_service_seconds: float = 0.001
    #: Simulated fixed cost of one commit ...
    commit_base_seconds: float = 0.02
    #: ... plus this much per coalesced update.
    commit_per_update_seconds: float = 0.0005
    #: Concurrent read servers in the simulated driver.
    read_concurrency: int = 4

    def __post_init__(self) -> None:
        if self.read_queue_limit < 1 or self.write_queue_limit < 1:
            raise UpdateError("gateway queue limits must be >= 1")
        if self.read_concurrency < 1:
            raise UpdateError("read_concurrency must be >= 1")
        if self.commit_interval_seconds <= 0:
            raise UpdateError("commit_interval_seconds must be positive")

    def commit_cost(self, num_updates: int) -> float:
        """Modeled virtual-clock cost of committing ``num_updates``."""
        return self.commit_base_seconds + self.commit_per_update_seconds * max(
            0, num_updates
        )


class ServingGateway:
    """Multi-client serving front for one :class:`DynamicClusterer`.

    The gateway is the synchronous core shared by both drivers: drivers
    own *time* (virtual or real) and call in with explicit ``now``
    stamps; the gateway owns state transitions, accounting, and the
    committed-batch log.  All mutating entry points take ``_lock`` so
    the threaded driver's client threads and commit thread compose; the
    simulated driver is single-threaded and pays one uncontended
    acquire.
    """

    def __init__(
        self,
        clusterer: DynamicClusterer,
        policy: Optional[GatewayPolicy] = None,
        instrumentation=None,
    ) -> None:
        self.clusterer = clusterer
        self.policy = policy if policy is not None else GatewayPolicy()
        self.instr = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        # Re-entrant: commit() holds it while the terminal-accounting
        # helpers (also called bare from client threads) re-acquire.
        self._lock = threading.RLock()
        #: FIFO of staged write requests awaiting the next commit cycle.
        self._staged: List[Request] = []
        #: Committed batches: {"epoch", "updates", "digest", "num_rejected"}.
        self.committed: List[dict] = []
        #: Per-(class, status) terminal accounting.
        self.counts: Dict[Tuple[str, str], int] = {
            (k, s): 0 for k in CLASSES for s in STATUSES
        }
        self.submitted: Dict[str, int] = {k: 0 for k in CLASSES}
        #: Epoch 0: the bootstrap partition, before any gateway commit.
        self._epoch = LabelEpoch(
            0,
            clusterer.state.assignments,
            f_objective=clusterer.f_objective,
        )
        self.epoch_log: List[str] = [self._epoch.digest]
        if self.instr.enabled:
            self.instr.set_gauge(M_GATEWAY_EPOCH, 0.0)

    # -- snapshot access ------------------------------------------------ #

    @property
    def epoch(self) -> LabelEpoch:
        """The current published epoch (atomic reference read)."""
        return self._epoch

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    # -- accounting helpers --------------------------------------------- #

    def _account(self, klass: str, status: str) -> None:
        with self._lock:
            self.counts[(klass, status)] += 1
        if self.instr.enabled:
            self.instr.count(M_GATEWAY_REQUESTS, 1.0, kind=klass, status=status)

    def _observe_latency(self, klass: str, latency: float) -> None:
        if self.instr.enabled:
            self.instr.metrics.histogram(
                M_SERVE_LATENCY,
                "Serving-facade op latency in seconds, by op",
                buckets=SERVE_LATENCY_BUCKETS,
            ).observe(max(0.0, latency), op=klass)

    def observe_queue_depth(self, klass: str, depth: int) -> None:
        """Record the queue depth seen at one admission decision."""
        if self.instr.enabled:
            self.instr.observe(M_GATEWAY_QUEUE, float(depth), kind=klass)

    def note_submit(self, request: Request) -> None:
        """Count one arrival (drivers call this before any admission)."""
        with self._lock:
            self.submitted[request.klass] += 1

    # -- terminal transitions ------------------------------------------- #

    def shed(self, request: Request, now: float) -> Response:
        """Load-shed ``request`` at admission (class queue full)."""
        self._account(request.klass, "shed")
        return Response(
            request_id=request.request_id,
            klass=request.klass,
            status="shed",
            latency=max(0.0, now - request.submitted_at),
            retry_after=self.policy.retry_after_seconds,
        )

    def expire(self, request: Request, now: float) -> Response:
        """Drop a read whose deadline passed while it was queued."""
        self._account(request.klass, "expired")
        return Response(
            request_id=request.request_id,
            klass=request.klass,
            status="expired",
            latency=max(0.0, now - request.submitted_at),
        )

    def serve_read(self, request: Request, now: float) -> Response:
        """Answer a read against the current epoch (never blocks writes)."""
        epoch = self._epoch  # one atomic reference read = the snapshot
        value = epoch.serve(request.kind, request.args)
        latency = max(0.0, now - request.submitted_at)
        self._account("read", "ok")
        self._observe_latency("read", latency)
        return Response(
            request_id=request.request_id,
            klass="read",
            status="ok",
            value=value,
            epoch=epoch.index,
            latency=latency,
        )

    def stage_write(self, request: Request, now: float) -> Optional[Response]:
        """Stage a write for the next commit; shed if the queue is full.

        Returns the shed :class:`Response`, or ``None`` when staged (the
        terminal response arrives from :meth:`commit`).
        """
        if request.update is None:
            raise UpdateError("stage_write needs a write request")
        with self._lock:
            self.observe_queue_depth("write", len(self._staged))
            if len(self._staged) >= self.policy.write_queue_limit:
                return self.shed(request, now)
            self._staged.append(request)
        return None

    # -- commit cycle ---------------------------------------------------- #

    def _validate(
        self, staged: Sequence[Request]
    ) -> Tuple[List[Request], List[Tuple[Request, str]]]:
        """Split staged writes into (appliable, rejected-with-reason).

        Walks the coalesced updates in FIFO order against a lazy weight
        cache seeded from the live overlay — exactly the state
        ``DynamicClusterer._stage`` would see — so the filtered batch is
        guaranteed to apply without raising, and a serial replay of the
        filtered batch makes the identical staging decisions.
        """
        overlay = self.clusterer.overlay
        cache: Dict[Tuple[int, int], float] = {}
        accepted: List[Request] = []
        rejected: List[Tuple[Request, str]] = []
        for req in staged:
            upd = req.update
            key = upd.key
            if key not in cache:
                cache[key] = overlay.edge_weight(upd.u, upd.v)
            current = cache[key]
            if upd.op == "insert":
                cache[key] = current + upd.weight
                accepted.append(req)
            elif upd.op == "delete":
                if current == 0.0:
                    rejected.append(
                        (req, f"cannot delete absent edge ({upd.u}, {upd.v})")
                    )
                else:
                    cache[key] = 0.0
                    accepted.append(req)
            else:  # reweight
                if current == 0.0:
                    rejected.append(
                        (
                            req,
                            f"cannot reweight absent edge ({upd.u}, {upd.v});"
                            " use an insert",
                        )
                    )
                else:
                    cache[key] = upd.weight
                    accepted.append(req)
        return accepted, rejected

    def commit(self, now: float) -> List[Response]:
        """Coalesce staged writes into one batch, apply, publish an epoch.

        Returns one terminal :class:`Response` per consumed staged write
        (``ok`` with the new epoch index, or ``rejected``).  An
        all-rejected or empty cycle publishes no epoch.  Only the commit
        caller mutates the clusterer — the threaded driver funnels every
        commit through its single commit thread.
        """
        with self._lock:
            take = len(self._staged)
            if self.policy.max_batch_updates > 0:
                take = min(take, self.policy.max_batch_updates)
            staged = self._staged[:take]
            del self._staged[:take]
            if not staged:
                return []
            accepted, rejected = self._validate(staged)
            responses: List[Response] = []
            for req, reason in rejected:
                self._account("write", "rejected")
                responses.append(
                    Response(
                        request_id=req.request_id,
                        klass="write",
                        status="rejected",
                        latency=max(0.0, now - req.submitted_at),
                        error=reason,
                    )
                )
            if not accepted:
                return responses
            batch = UpdateBatch([req.update for req in accepted])
            report = self.clusterer.apply(batch)
            epoch = LabelEpoch(
                self._epoch.index + 1,
                self.clusterer.state.assignments,
                f_objective=self.clusterer.f_objective,
                published_at=now,
                batch_updates=len(batch),
            )
            self.committed.append(
                {
                    "epoch": epoch.index,
                    "updates": [u.as_dict() for u in batch],
                    "digest": epoch.digest,
                    "num_rejected": len(rejected),
                    "moves": report.moves,
                    "escalated": report.escalated,
                }
            )
            self.epoch_log.append(epoch.digest)
            self._epoch = epoch  # atomic publish
            if self.instr.enabled:
                self.instr.set_gauge(M_GATEWAY_EPOCH, float(epoch.index))
                self.instr.observe(M_GATEWAY_BATCH, float(len(batch)))
            for req in accepted:
                latency = max(0.0, now - req.submitted_at)
                self._account("write", "ok")
                self._observe_latency("write", latency)
                responses.append(
                    Response(
                        request_id=req.request_id,
                        klass="write",
                        status="ok",
                        epoch=epoch.index,
                        latency=latency,
                        extras={"moves": report.moves},
                    )
                )
            return responses

    # -- equivalence + reporting ----------------------------------------- #

    def committed_batches(self) -> List[UpdateBatch]:
        """The filtered batches actually applied, in commit order."""
        return [
            UpdateBatch(
                EdgeUpdate.from_dict(u) for u in entry["updates"]
            )
            for entry in self.committed
        ]

    def stats(self) -> dict:
        """Gateway accounting (feeds DoctorInputs.gateway_stats).

        Invariant: per class, ``submitted == ok + shed + expired +
        rejected + pending`` where pending is staged writes not yet
        committed — the no-silent-drops audit the tests assert.
        """
        by_class = {}
        for klass in CLASSES:
            row = {s: self.counts[(klass, s)] for s in STATUSES}
            row["submitted"] = self.submitted[klass]
            by_class[klass] = row
        return {
            "epoch": self._epoch.index,
            "commits": len(self.committed),
            "staged": len(self._staged),
            "requests": by_class,
            "epoch_digest": self._epoch.digest,
            "clusterer": self.clusterer.stats(),
        }


def replay_digests(
    graph: CSRGraph,
    assignments: np.ndarray,
    config: ClusteringConfig,
    batches: Sequence[UpdateBatch],
    engine: Optional[str] = None,
    guard: Optional[DriftGuard] = None,
) -> List[str]:
    """Serially replay committed batches; per-epoch label digests.

    Constructs a fresh :class:`DynamicClusterer` from the *bootstrap*
    graph + labels (fresh ``make_rng(config.seed)`` — the same initial
    rng state the gateway's clusterer started from) and applies each
    batch through the plain ``repro update`` path.  Element ``0`` is the
    bootstrap digest; element ``k`` is the digest after batch ``k``.
    The serving equivalence gate asserts this list equals the gateway's
    ``epoch_log`` bit-for-bit.
    """
    clusterer = DynamicClusterer(
        graph,
        np.array(assignments, dtype=np.int64, copy=True),
        config,
        engine=engine,
        guard=guard,
    )
    digests = [label_digest(clusterer.state.assignments)]
    try:
        for batch in batches:
            clusterer.apply(batch)
            digests.append(label_digest(clusterer.state.assignments))
    finally:
        clusterer.close()
    return digests
