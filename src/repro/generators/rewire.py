"""Degree-preserving rewiring (configuration-model null graphs).

Double-edge swaps preserve every vertex's degree while destroying
community structure — the null model behind modularity itself.  Rewired
copies let users test the *significance* of a clustering: a real
community structure scores far above the same pipeline on its rewired
twin (exercised by ``benchmarks/bench_ext_significance.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_nonnegative


def rewire(
    graph: CSRGraph,
    num_swaps: int | None = None,
    seed: SeedLike = None,
) -> CSRGraph:
    """A degree-preserving random rewiring of ``graph``.

    Performs ``num_swaps`` double-edge swaps (default ``10 m``): pick two
    edges (a, b) and (c, d), replace with (a, d) and (c, b) unless that
    would create a self-loop or duplicate edge.  Edge weights travel with
    the first endpoint's edge.  Degrees are exactly preserved.
    """
    u, v, w = graph.edge_list()
    m = u.size
    if m < 2:
        return graph_from_edges(
            np.stack([u, v], axis=1), weights=w, num_vertices=graph.num_vertices
        )
    swaps = 10 * m if num_swaps is None else int(num_swaps)
    require_nonnegative(swaps, "num_swaps")
    rng = make_rng(seed)
    u = u.copy()
    v = v.copy()
    existing = set(zip(u.tolist(), v.tolist()))

    performed = 0
    attempts = 0
    max_attempts = max(20 * swaps, 100)
    while performed < swaps and attempts < max_attempts:
        attempts += 1
        i, j = rng.integers(0, m, size=2)
        if i == j:
            continue
        a, b = int(u[i]), int(v[i])
        c, d = int(u[j]), int(v[j])
        # Propose (a, d) and (c, b).
        e1 = (min(a, d), max(a, d))
        e2 = (min(c, b), max(c, b))
        if a == d or c == b or e1 == e2:
            continue
        if e1 in existing or e2 in existing:
            continue
        existing.discard((a, b))
        existing.discard((c, d))
        existing.add(e1)
        existing.add(e2)
        u[i], v[i] = e1
        u[j], v[j] = e2
        performed += 1

    return graph_from_edges(
        np.stack([u, v], axis=1), weights=w, num_vertices=graph.num_vertices
    )


def degree_sequence_preserved(original: CSRGraph, rewired: CSRGraph) -> bool:
    """Check the defining invariant of the rewiring."""
    return bool(np.array_equal(original.degrees(), rewired.degrees()))
