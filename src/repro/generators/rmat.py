"""rMAT recursive-matrix graph generator (Chakrabarti–Zhan–Faloutsos).

The paper demonstrates scalability on rMAT graphs with a=0.5, b=c=0.1,
d=0.3 across four density regimes: very sparse (m = 5n), sparse (m = 50n),
dense (m = n^1.5) and very dense (m = n^2) — Figures 6 and 12.

Edges are sampled by the standard recursive quadrant descent, vectorized
over all edges at once: at each of ``log2 n`` levels every edge picks a
quadrant i.i.d. from (a, b, c, d).  Duplicate edges are combined by the
builder, so the realized undirected edge count is slightly below the
requested number (as with the reference generator).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_positive

#: The paper's rMAT parameters.
PAPER_A, PAPER_B, PAPER_C, PAPER_D = 0.5, 0.1, 0.1, 0.3


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = PAPER_A,
    b: float = PAPER_B,
    c: float = PAPER_C,
    d: float = PAPER_D,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample ``num_edges`` directed rMAT edge endpoints over ``2**scale`` vertices."""
    require(scale >= 1, f"scale must be >= 1, got {scale}")
    require_positive(num_edges, "num_edges")
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"quadrant probabilities must sum to 1, got {total}")
    rng = make_rng(seed)
    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    # Quadrants: 0 -> (0,0) prob a, 1 -> (0,1) prob b, 2 -> (1,0) prob c,
    # 3 -> (1,1) prob d.
    probs = np.asarray([a, b, c, d])
    for level in range(scale):
        bit = np.int64(1) << np.int64(scale - 1 - level)
        quadrant = rng.choice(4, size=num_edges, p=probs)
        u += bit * (quadrant >= 2)
        v += bit * ((quadrant == 1) | (quadrant == 3))
    return np.stack([u, v], axis=1)


def rmat_graph(
    scale: int,
    num_edges: int,
    a: float = PAPER_A,
    b: float = PAPER_B,
    c: float = PAPER_C,
    d: float = PAPER_D,
    seed: SeedLike = None,
) -> CSRGraph:
    """A symmetrized, deduplicated rMAT graph with ``2**scale`` vertices."""
    edges = rmat_edges(scale, num_edges, a, b, c, d, seed=seed)
    keep = edges[:, 0] != edges[:, 1]
    return graph_from_edges(edges[keep], num_vertices=2**scale)


def density_regimes(scale: int) -> dict:
    """The paper's four edge-count regimes for ``n = 2**scale`` vertices.

    ``n**2`` is capped at ``n * (n - 1) / 2`` (a complete graph) so small
    scales remain valid.
    """
    n = 2**scale
    complete = n * (n - 1) // 2
    return {
        "very-sparse": min(5 * n, complete),
        "sparse": min(50 * n, complete),
        "dense": min(int(n**1.5), complete),
        "very-dense": min(n * n, complete),
    }
