"""Planted-partition graphs with (optionally overlapping) ground truth.

Surrogate for the SNAP graphs + their top-5000 ground-truth community
files: vertices are partitioned into communities with a configurable
(power-law by default) size distribution; intra-community edges are
sampled to a target mean intra-degree and a global background of
inter-community edges is added.  A fraction of vertices may additionally
belong to a second community — SNAP's ground-truth communities overlap,
and the paper's precision/recall methodology (match each ground-truth
community to the cluster with largest intersection) is designed for that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_nonnegative, require_positive


@dataclass
class PlantedPartition:
    """A generated graph plus its ground truth."""

    graph: CSRGraph
    #: Ground-truth communities (member-id arrays; may overlap).
    communities: List[np.ndarray]
    #: Primary community label per vertex (disjoint; for ARI/NMI).
    labels: np.ndarray
    name: str = "planted"

    @property
    def num_communities(self) -> int:
        return len(self.communities)

    def top_communities(self, k: int = 5000) -> List[np.ndarray]:
        """The ``k`` largest ground-truth communities (SNAP's top-5000)."""
        order = sorted(
            range(len(self.communities)),
            key=lambda i: len(self.communities[i]),
            reverse=True,
        )
        return [self.communities[i] for i in order[:k]]


def _sample_community_sizes(
    rng: np.random.Generator,
    num_vertices: int,
    size_min: int,
    size_max: int,
    power: float,
) -> np.ndarray:
    """Power-law community sizes covering exactly ``num_vertices``."""
    sizes: List[int] = []
    covered = 0
    support = np.arange(size_min, size_max + 1, dtype=np.float64)
    probs = support ** (-power)
    probs /= probs.sum()
    while covered < num_vertices:
        batch = rng.choice(support, size=64, p=probs).astype(np.int64)
        for s in batch.tolist():
            s = min(s, num_vertices - covered)
            if s <= 0:
                break
            sizes.append(s)
            covered += s
            if covered >= num_vertices:
                break
    return np.asarray(sizes, dtype=np.int64)


def planted_partition_graph(
    num_vertices: int,
    intra_degree: float = 8.0,
    inter_degree: float = 2.0,
    size_min: int = 8,
    size_max: int = 200,
    power: float = 1.7,
    overlap_fraction: float = 0.0,
    seed: SeedLike = None,
    name: str = "planted",
) -> PlantedPartition:
    """Generate a planted-partition graph.

    Parameters
    ----------
    num_vertices:
        Total vertex count.
    intra_degree:
        Target mean number of intra-community edge endpoints per member.
    inter_degree:
        Target mean number of background (inter-community) edge endpoints
        per vertex.
    size_min, size_max, power:
        Community-size power law ``P(s) ~ s**-power`` on
        ``[size_min, size_max]``.
    overlap_fraction:
        Fraction of vertices given a second (overlapping) ground-truth
        membership, with edges into that community as well.
    """
    require_positive(num_vertices, "num_vertices")
    require_nonnegative(intra_degree, "intra_degree")
    require_nonnegative(inter_degree, "inter_degree")
    require(1 <= size_min <= size_max, "need 1 <= size_min <= size_max")
    require(0.0 <= overlap_fraction <= 1.0, "overlap_fraction must be in [0, 1]")
    rng = make_rng(seed)

    sizes = _sample_community_sizes(rng, num_vertices, size_min, size_max, power)
    num_comms = sizes.size
    starts = np.zeros(num_comms, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    # Community members are contiguous slices of a random permutation.
    perm = rng.permutation(num_vertices).astype(np.int64)
    labels = np.zeros(num_vertices, dtype=np.int64)
    comm_of_slot = np.repeat(np.arange(num_comms, dtype=np.int64), sizes)
    labels[perm] = comm_of_slot

    edge_parts: List[np.ndarray] = []

    # Intra-community edges: per community, size * intra_degree / 2 samples.
    intra_counts = np.maximum(
        (sizes.astype(np.float64) * intra_degree / 2.0).astype(np.int64),
        np.where(sizes > 1, sizes - 1, 0),  # keep small communities connected-ish
    )
    intra_counts[sizes < 2] = 0
    total_intra = int(intra_counts.sum())
    if total_intra:
        edge_comm = np.repeat(np.arange(num_comms, dtype=np.int64), intra_counts)
        s_of_edge = sizes[edge_comm].astype(np.float64)
        lo = starts[edge_comm]
        a = lo + (rng.random(total_intra) * s_of_edge).astype(np.int64)
        b = lo + (rng.random(total_intra) * s_of_edge).astype(np.int64)
        edge_parts.append(np.stack([perm[a], perm[b]], axis=1))

    # Background inter-community edges: uniform random pairs.
    num_inter = int(num_vertices * inter_degree / 2.0)
    if num_inter:
        a = rng.integers(0, num_vertices, size=num_inter, dtype=np.int64)
        b = rng.integers(0, num_vertices, size=num_inter, dtype=np.int64)
        edge_parts.append(np.stack([a, b], axis=1))

    # Overlapping memberships.
    members: List[np.ndarray] = [
        perm[starts[c]: starts[c] + sizes[c]].copy() for c in range(num_comms)
    ]
    num_overlap = int(overlap_fraction * num_vertices)
    if num_overlap and num_comms > 1:
        extra_vertices = rng.choice(num_vertices, size=num_overlap, replace=False)
        extra_comms = rng.integers(0, num_comms, size=num_overlap, dtype=np.int64)
        # Avoid re-adding a vertex to its own community.
        clash = extra_comms == labels[extra_vertices]
        extra_comms[clash] = (extra_comms[clash] + 1) % num_comms
        additions: dict = {}
        link_parts: List[np.ndarray] = []
        links_per_overlap = max(1, int(intra_degree // 2))
        for v, c in zip(extra_vertices.tolist(), extra_comms.tolist()):
            additions.setdefault(c, []).append(v)
            host = members[c]
            picks = rng.integers(0, host.size, size=links_per_overlap)
            link_parts.append(
                np.stack(
                    [np.full(links_per_overlap, v, dtype=np.int64), host[picks]],
                    axis=1,
                )
            )
        for c, extra in additions.items():
            members[c] = np.concatenate([members[c], np.asarray(extra, dtype=np.int64)])
        edge_parts.extend(link_parts)

    edges = (
        np.concatenate(edge_parts, axis=0)
        if edge_parts
        else np.zeros((0, 2), dtype=np.int64)
    )
    keep = edges[:, 0] != edges[:, 1]
    graph = graph_from_edges(edges[keep], num_vertices=num_vertices)
    return PlantedPartition(graph=graph, communities=members, labels=labels, name=name)
