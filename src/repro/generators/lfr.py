"""LFR-style benchmark graphs (power-law degrees AND community sizes).

The LFR benchmark (Lancichinetti–Fortunato–Radicchi) is the standard
synthetic testbed for community detection beyond simple planted
partitions: vertex degrees follow a power law, community sizes follow a
power law, and a *mixing parameter* ``mu`` fixes the fraction of each
vertex's edges that leave its community.  This module implements an
LFR-like generator by configuration-model stub matching, giving the
repository a second, harder ground-truth workload family than
:mod:`repro.generators.planted` (degree heterogeneity stresses the
hub-handling paths the paper's twitter experiments exercise).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.generators.planted import PlantedPartition, _sample_community_sizes
from repro.graphs.builders import graph_from_edges
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_positive


def _powerlaw_degrees(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
) -> np.ndarray:
    """Sample integer degrees ~ d^-exponent on [min_degree, max_degree]."""
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = support ** (-exponent)
    probs /= probs.sum()
    return rng.choice(support, size=n, p=probs).astype(np.int64)


def _stub_match(rng: np.random.Generator, stubs: np.ndarray) -> np.ndarray:
    """Configuration-model matching: pair shuffled stubs into edges."""
    if stubs.size % 2:
        stubs = stubs[:-1]
    shuffled = rng.permutation(stubs)
    return shuffled.reshape(-1, 2)


def lfr_like_graph(
    num_vertices: int,
    mixing: float = 0.2,
    degree_exponent: float = 2.5,
    min_degree: int = 4,
    max_degree: int = 60,
    size_min: int = 10,
    size_max: int = 100,
    size_exponent: float = 1.5,
    seed: SeedLike = None,
    name: str = "lfr",
) -> PlantedPartition:
    """Generate an LFR-like graph with ground-truth communities.

    Parameters follow LFR conventions: ``mixing`` (mu) is the expected
    fraction of each vertex's edges leaving its community (0 = perfectly
    separated, 1 = no structure); degrees are power-law with the given
    exponent and bounds; community sizes power-law on
    ``[size_min, size_max]``.
    """
    require_positive(num_vertices, "num_vertices")
    require(0.0 <= mixing <= 1.0, f"mixing must be in [0, 1], got {mixing}")
    require(1 <= min_degree <= max_degree, "need 1 <= min_degree <= max_degree")
    rng = make_rng(seed)

    sizes = _sample_community_sizes(
        rng, num_vertices, size_min, size_max, size_exponent
    )
    num_comms = sizes.size
    starts = np.zeros(num_comms, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    perm = rng.permutation(num_vertices).astype(np.int64)
    labels = np.zeros(num_vertices, dtype=np.int64)
    comm_of_slot = np.repeat(np.arange(num_comms, dtype=np.int64), sizes)
    labels[perm] = comm_of_slot

    degrees = _powerlaw_degrees(
        rng, num_vertices, degree_exponent, min_degree, max_degree
    )
    # Cap intra degree at community size - 1 so stubs can be realized.
    community_cap = sizes[labels[np.arange(num_vertices)]] - 1
    intra_degrees = np.minimum(
        np.round(degrees * (1.0 - mixing)).astype(np.int64),
        np.maximum(community_cap, 0),
    )
    inter_degrees = degrees - intra_degrees

    edge_parts: List[np.ndarray] = []
    # Intra-community stubs, matched per community.
    for c in range(num_comms):
        members = perm[starts[c]: starts[c] + sizes[c]]
        stubs = np.repeat(members, intra_degrees[members])
        if stubs.size >= 2:
            edge_parts.append(_stub_match(rng, stubs))
    # Inter-community stubs, matched globally (self-community collisions
    # are kept: they only push realized mixing slightly below mu, as in
    # standard LFR implementations).
    inter_stubs = np.repeat(
        np.arange(num_vertices, dtype=np.int64), inter_degrees
    )
    if inter_stubs.size >= 2:
        edge_parts.append(_stub_match(rng, inter_stubs))

    edges = (
        np.concatenate(edge_parts, axis=0)
        if edge_parts
        else np.zeros((0, 2), dtype=np.int64)
    )
    keep = edges[:, 0] != edges[:, 1]
    graph = graph_from_edges(edges[keep], num_vertices=num_vertices)
    communities = [
        perm[starts[c]: starts[c] + sizes[c]].copy() for c in range(num_comms)
    ]
    return PlantedPartition(
        graph=graph, communities=communities, labels=labels, name=name
    )


def realized_mixing(partition: PlantedPartition) -> float:
    """Measured fraction of edge endpoints leaving their community."""
    graph = partition.graph
    if graph.num_directed_edges == 0:
        return 0.0
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
    )
    inter = partition.labels[src] != partition.labels[graph.neighbors]
    return float(inter.mean())
