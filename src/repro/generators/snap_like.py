"""Named surrogates for the paper's SNAP graphs (Table 1).

The paper evaluates on com-amazon, com-dblp, com-livejournal, com-orkut,
twitter, and com-friendster with SNAP's top-5000 ground-truth communities.
Those inputs (up to 1.8 B edges) are neither downloadable here nor
tractable in pure Python, so each gets a planted-partition surrogate with
matched *qualitative* statistics at reduced scale (DESIGN.md §2):

* amazon / dblp — small mean degree, small communities;
* livejournal / orkut — larger and denser, bigger communities;
* twitter — few giant communities plus very-high-degree hubs: the regime
  the paper identifies as CAS-contention-bound for PAR-MOD (Appendix C);
* friendster — large with tiny average cluster size (paper: 1.11).

Every surrogate carries overlapping ground truth so the paper's
largest-intersection precision/recall methodology is exercised faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.generators.planted import PlantedPartition, planted_partition_graph
from repro.graphs.builders import graph_from_edges
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SurrogateSpec:
    """Generation parameters for one named surrogate."""

    name: str
    num_vertices: int
    intra_degree: float
    inter_degree: float
    size_min: int
    size_max: int
    power: float
    overlap_fraction: float = 0.05
    #: Number of very-high-degree hub vertices to graft on (twitter only).
    num_hubs: int = 0
    hub_degree: int = 0


#: Registry of surrogates, keyed by the paper's graph names.
SNAP_SURROGATES: Dict[str, SurrogateSpec] = {
    "amazon": SurrogateSpec(
        name="amazon", num_vertices=6000, intra_degree=5.0, inter_degree=1.0,
        size_min=5, size_max=60, power=1.9,
    ),
    "dblp": SurrogateSpec(
        name="dblp", num_vertices=6000, intra_degree=6.0, inter_degree=1.4,
        size_min=4, size_max=120, power=1.8,
    ),
    "livejournal": SurrogateSpec(
        name="livejournal", num_vertices=15000, intra_degree=12.0,
        inter_degree=4.0, size_min=8, size_max=300, power=1.7,
    ),
    "orkut": SurrogateSpec(
        name="orkut", num_vertices=15000, intra_degree=24.0, inter_degree=10.0,
        size_min=20, size_max=500, power=1.6,
    ),
    "twitter": SurrogateSpec(
        name="twitter", num_vertices=20000, intra_degree=10.0, inter_degree=3.0,
        size_min=1500, size_max=6000, power=1.1, overlap_fraction=0.02,
        num_hubs=12, hub_degree=3000,
    ),
    "friendster": SurrogateSpec(
        name="friendster", num_vertices=20000, intra_degree=14.0,
        inter_degree=5.0, size_min=6, size_max=80, power=1.9,
    ),
}


def _graft_hubs(
    partition: PlantedPartition, spec: SurrogateSpec, seed
) -> PlantedPartition:
    """Rewire ``num_hubs`` vertices into very-high-degree hubs.

    Models twitter's celebrity vertices (max degree ~3M vs friendster's
    5K): each hub gets ``hub_degree`` extra edges to uniformly random
    vertices, creating the few-giant-cluster + hot-cluster contention
    pattern of the paper's twitter experiments.
    """
    rng = make_rng(seed)
    graph = partition.graph
    n = graph.num_vertices
    hubs = rng.choice(n, size=spec.num_hubs, replace=False)
    extra_src = np.repeat(hubs.astype(np.int64), spec.hub_degree)
    extra_dst = rng.integers(0, n, size=extra_src.size, dtype=np.int64)
    old_u, old_v, old_w = graph.edge_list()
    edges = np.concatenate(
        [
            np.stack([old_u, old_v], axis=1),
            np.stack([extra_src, extra_dst], axis=1),
        ],
        axis=0,
    )
    weights = np.concatenate([old_w, np.ones(extra_src.size)])
    keep = edges[:, 0] != edges[:, 1]
    new_graph = graph_from_edges(edges[keep], weights=weights[keep], num_vertices=n)
    return PlantedPartition(
        graph=new_graph,
        communities=partition.communities,
        labels=partition.labels,
        name=partition.name,
    )


def load_snap_surrogate(
    name: str, seed: int = 0, scale: float = 1.0
) -> PlantedPartition:
    """Generate the named surrogate (deterministic for a given seed).

    ``scale`` multiplies the vertex count (benches use < 1 for quick runs,
    > 1 for the large-graph experiments).
    """
    if name not in SNAP_SURROGATES:
        raise KeyError(
            f"unknown surrogate {name!r}; available: {sorted(SNAP_SURROGATES)}"
        )
    spec = SNAP_SURROGATES[name]
    num_vertices = max(16, int(spec.num_vertices * scale))
    partition = planted_partition_graph(
        num_vertices=num_vertices,
        intra_degree=spec.intra_degree,
        inter_degree=spec.inter_degree,
        size_min=spec.size_min,
        size_max=min(spec.size_max, num_vertices),
        power=spec.power,
        overlap_fraction=spec.overlap_fraction,
        seed=seed,
        name=name,
    )
    if spec.num_hubs:
        partition = _graft_hubs(partition, spec, seed + 1)
    return partition


def surrogate_table(seed: int = 0, scale: float = 1.0) -> list:
    """Rows of (name, n, m) for every surrogate — the Table 1 analogue."""
    rows = []
    for name in SNAP_SURROGATES:
        part = load_snap_surrogate(name, seed=seed, scale=scale)
        rows.append((name, part.graph.num_vertices, part.graph.num_edges))
    return rows
