"""k-NN graph construction from pointsets (the paper's ScaNN substitute).

The paper builds weighted graphs with the ScaNN approximate k-NN library,
k = 50, cosine similarity, then symmetrizes (Appendix C.2).  We compute
exact cosine k-NN by blocked brute force (numpy matmul on normalized
vectors), which at surrogate scale is both tractable and a strict quality
upper bound on the approximate search — the downstream clustering code
path is identical.

Edge weights are cosine similarities clipped to be non-negative
(LambdaCC edge weights express similarity strength).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.utils.validation import require, require_positive

#: Row block size for the blocked similarity matmul.
_BLOCK = 1024


def cosine_knn(points: np.ndarray, k: int) -> tuple:
    """Exact cosine k-NN; returns ``(indices, similarities)`` of shape (n, k)."""
    points = np.asarray(points, dtype=np.float64)
    require(points.ndim == 2, f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    require_positive(k, "k")
    require(k < n, f"k={k} must be smaller than the number of points {n}")
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    unit = points / norms
    indices = np.empty((n, k), dtype=np.int64)
    sims = np.empty((n, k), dtype=np.float64)
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        block_sims = unit[start:stop] @ unit.T
        rows = np.arange(start, stop)
        block_sims[np.arange(stop - start), rows] = -np.inf  # exclude self
        top = np.argpartition(block_sims, -k, axis=1)[:, -k:]
        top_sims = np.take_along_axis(block_sims, top, axis=1)
        order = np.argsort(-top_sims, axis=1)
        indices[start:stop] = np.take_along_axis(top, order, axis=1)
        sims[start:stop] = np.take_along_axis(top_sims, order, axis=1)
    return indices, sims


def approximate_cosine_knn(
    points: np.ndarray,
    k: int,
    num_projections: int = 8,
    num_tables: int = 4,
    seed=None,
) -> tuple:
    """Approximate cosine k-NN via random-hyperplane LSH (ScaNN stand-in).

    The paper uses ScaNN's *approximate* search; this provides a faithful
    approximate substitute: ``num_tables`` hash tables of
    ``num_projections``-bit signed-random-projection signatures; each
    point's candidates are the points sharing a bucket in any table, and
    the top-``k`` candidates by exact cosine similarity are returned.
    Points whose candidate pool is smaller than ``k`` return fewer
    neighbors (marked by index -1 and similarity -inf).

    Returns ``(indices, similarities)`` of shape ``(n, k)``.
    """
    from repro.utils.rng import make_rng

    points = np.asarray(points, dtype=np.float64)
    require(points.ndim == 2, f"points must be 2-D, got {points.shape}")
    n, dims = points.shape
    require_positive(k, "k")
    require(k < n, f"k={k} must be smaller than the number of points {n}")
    rng = make_rng(seed)
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    unit = points / norms

    candidate_sets = [set() for _ in range(n)]
    powers = 1 << np.arange(num_projections, dtype=np.int64)
    for _ in range(num_tables):
        planes = rng.normal(size=(dims, num_projections))
        signatures = ((unit @ planes) > 0) @ powers
        order = np.argsort(signatures, kind="stable")
        sorted_sig = signatures[order]
        boundaries = np.flatnonzero(np.diff(sorted_sig)) + 1
        for bucket in np.split(order, boundaries):
            members = bucket.tolist()
            for member in members:
                candidate_sets[member].update(members)

    indices = np.full((n, k), -1, dtype=np.int64)
    sims = np.full((n, k), -np.inf, dtype=np.float64)
    for i in range(n):
        candidates = np.asarray(
            [c for c in candidate_sets[i] if c != i], dtype=np.int64
        )
        if candidates.size == 0:
            continue
        scores = unit[candidates] @ unit[i]
        take = min(k, candidates.size)
        top = np.argpartition(scores, -take)[-take:]
        order = np.argsort(-scores[top])
        indices[i, :take] = candidates[top][order]
        sims[i, :take] = scores[top][order]
    return indices, sims


def knn_recall(
    approx_indices: np.ndarray, exact_indices: np.ndarray
) -> float:
    """Fraction of exact k-NN edges the approximate search recovered."""
    hits = 0
    total = 0
    for approx_row, exact_row in zip(approx_indices, exact_indices):
        valid = set(int(x) for x in approx_row if x >= 0)
        truth = set(int(x) for x in exact_row)
        hits += len(valid & truth)
        total += len(truth)
    return hits / max(total, 1)


def knn_graph(points: np.ndarray, k: int = 50, min_similarity: float = 0.0) -> CSRGraph:
    """Symmetrized cosine k-NN graph with similarity edge weights.

    Mutual duplicates (u in v's list and v in u's) combine by summation
    during symmetrization, matching the effect of an undirected union with
    reinforced mutual edges.  Edges below ``min_similarity`` are dropped.
    """
    indices, sims = cosine_knn(points, k)
    return _graph_from_knn(indices, sims, points.shape[0], min_similarity)


def approximate_knn_graph(
    points: np.ndarray,
    k: int = 50,
    min_similarity: float = 0.0,
    num_projections: int = 8,
    num_tables: int = 4,
    seed=None,
) -> CSRGraph:
    """Like :func:`knn_graph` but with the LSH approximate search."""
    indices, sims = approximate_cosine_knn(
        points, k, num_projections=num_projections, num_tables=num_tables,
        seed=seed,
    )
    return _graph_from_knn(indices, sims, points.shape[0], min_similarity)


def _graph_from_knn(
    indices: np.ndarray, sims: np.ndarray, n: int, min_similarity: float
) -> CSRGraph:
    k = indices.shape[1]
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = indices.reshape(-1)
    w = sims.reshape(-1)
    keep = (dst >= 0) & (w > min_similarity)
    src, dst, w = src[keep], dst[keep], w[keep]
    # Canonicalize so mutual neighbor pairs dedup to a single edge with the
    # larger similarity rather than doubling.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * np.int64(n) + hi
    unique_key, inverse = np.unique(key, return_inverse=True)
    merged_w = np.zeros(unique_key.size, dtype=np.float64)
    np.maximum.at(merged_w, inverse, w)
    edges = np.stack(
        [(unique_key // n).astype(np.int64), (unique_key % n).astype(np.int64)],
        axis=1,
    )
    return graph_from_edges(edges, weights=merged_w, num_vertices=n)
