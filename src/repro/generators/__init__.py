"""Synthetic graph and pointset generators.

These stand in for the paper's data sets (no network access and
laptop-scale compute; see DESIGN.md §2):

* :mod:`repro.generators.rmat`      — the rMAT generator the paper uses for
  its scalability study (a=0.5, b=c=0.1, d=0.3);
* :mod:`repro.generators.planted`   — planted-partition graphs with
  (optionally overlapping) ground-truth communities;
* :mod:`repro.generators.snap_like` — named surrogates for the SNAP graphs
  (amazon, dblp, livejournal, orkut, twitter, friendster) with matched
  qualitative statistics at reduced scale;
* :mod:`repro.generators.pointsets` — Gaussian-mixture surrogates for the
  UCI digits / letter pointsets;
* :mod:`repro.generators.knn`       — cosine k-NN graph construction
  (the paper uses ScaNN with k = 50; we use exact brute-force k-NN).
"""

from repro.generators.knn import approximate_knn_graph, knn_graph
from repro.generators.lfr import lfr_like_graph
from repro.generators.planted import PlantedPartition, planted_partition_graph
from repro.generators.pointsets import digits_like_pointset, letter_like_pointset
from repro.generators.rmat import rmat_graph
from repro.generators.snap_like import SNAP_SURROGATES, load_snap_surrogate

__all__ = [
    "PlantedPartition",
    "SNAP_SURROGATES",
    "approximate_knn_graph",
    "digits_like_pointset",
    "knn_graph",
    "letter_like_pointset",
    "lfr_like_graph",
    "load_snap_surrogate",
    "planted_partition_graph",
    "rmat_graph",
]
