"""Gaussian-mixture pointset surrogates for the UCI digits / letter data.

The paper's weighted-graph experiments (Appendix C.2, Figures 15–16) build
k-NN graphs from the Optical Recognition of Handwritten Digits dataset
(1,797 instances, 10 classes, 64 features) and the Letter Recognition
dataset (20,000 instances, 26 classes, 16 features).  Without network
access we generate Gaussian mixtures with the same instance/class/feature
counts and controllable class separation, which exercises the identical
code path: pointset -> cosine k-NN graph -> weighted clustering -> ARI/NMI
against ground-truth labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive


@dataclass
class LabeledPointset:
    """Points with ground-truth class labels."""

    points: np.ndarray  # (num_points, num_features)
    labels: np.ndarray  # (num_points,)
    name: str

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0


def gaussian_mixture_pointset(
    num_points: int,
    num_classes: int,
    num_features: int,
    separation: float = 3.0,
    noise: float = 1.0,
    informative_dims: Optional[int] = None,
    seed: SeedLike = None,
    name: str = "mixture",
) -> LabeledPointset:
    """Sample a labeled Gaussian mixture.

    Class centers are drawn i.i.d. N(0, separation^2 I) on the first
    ``informative_dims`` coordinates (all of them by default) and 0
    elsewhere; points add isotropic N(0, noise^2 I) over *all* features.
    Restricting the informative subspace while keeping noisy ambient
    dimensions is what makes cosine k-NN neighborhoods imperfect — like
    real feature data — so the weighted/unweighted clustering comparison
    of Figures 15–16 has something to measure.
    """
    require_positive(num_points, "num_points")
    require_positive(num_classes, "num_classes")
    require_positive(num_features, "num_features")
    effective = num_features if informative_dims is None else informative_dims
    if not 1 <= effective <= num_features:
        raise ValueError(
            f"informative_dims must be in [1, {num_features}], got {effective}"
        )
    rng = make_rng(seed)
    centers = np.zeros((num_classes, num_features))
    centers[:, :effective] = rng.normal(0.0, separation, size=(num_classes, effective))
    labels = rng.integers(0, num_classes, size=num_points, dtype=np.int64)
    points = centers[labels] + rng.normal(0.0, noise, size=(num_points, num_features))
    return LabeledPointset(points=points, labels=labels, name=name)


def digits_like_pointset(seed: SeedLike = 0) -> LabeledPointset:
    """Surrogate for UCI optical digits: 1,797 points, 10 classes, 64 dims.

    Parameterized so k-NN clustering quality lands where the real digits
    data does (ARI ~0.85-0.95 at good resolutions).
    """
    return gaussian_mixture_pointset(
        num_points=1797,
        num_classes=10,
        num_features=64,
        separation=2.0,
        noise=1.0,
        informative_dims=10,
        seed=seed,
        name="digits",
    )


def letter_like_pointset(seed: SeedLike = 0, num_points: int = 20000) -> LabeledPointset:
    """Surrogate for UCI letter recognition: 20,000 points, 26 classes,
    16 dims; heavily overlapping classes, matching letter's much lower
    published clustering scores (ARI ~0.3-0.5)."""
    return gaussian_mixture_pointset(
        num_points=num_points,
        num_classes=26,
        num_features=16,
        separation=1.6,
        noise=1.0,
        informative_dims=6,
        seed=seed,
        name="letter",
    )
