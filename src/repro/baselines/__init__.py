"""Baseline community-detection implementations the paper compares against.

* :mod:`repro.baselines.kwikcluster`    — sequential KwikCluster / Pivot
  (Ailon–Charikar–Newman);
* :mod:`repro.baselines.c4`             — C4, the serializable parallel
  KwikCluster of Pan et al.;
* :mod:`repro.baselines.clusterwild`    — ClusterWild!, the
  conflict-ignoring parallel pivot of Pan et al.;
* :mod:`repro.baselines.lambdacc_dense` — the dense-adjacency-matrix
  sequential Louvain standing in for Veldt et al.'s MATLAB LambdaCC;
* :mod:`repro.baselines.tectonic`       — Tectonic's triangle-conductance
  thresholding (Tsourakakis et al.);
* :mod:`repro.baselines.scd`            — SCD's WCC-based partitioning
  (Prat-Pérez et al.);
* :mod:`repro.baselines.plm`            — a NetworKit-style parallel
  Louvain modularity (asynchronous, num_iter = 32, non-work-efficient
  compression);
* :mod:`repro.baselines.triangles`      — the shared triangle-counting
  substrate.
"""

from repro.baselines.c4 import c4_cluster
from repro.baselines.clusterwild import clusterwild_cluster
from repro.baselines.kwikcluster import kwikcluster
from repro.baselines.labelprop import label_propagation
from repro.baselines.lambdacc_dense import dense_lambdacc_cluster
from repro.baselines.plm import plm_cluster
from repro.baselines.scd import scd_cluster
from repro.baselines.tectonic import tectonic_cluster
from repro.baselines.triangles import edge_triangle_counts

__all__ = [
    "c4_cluster",
    "clusterwild_cluster",
    "dense_lambdacc_cluster",
    "edge_triangle_counts",
    "kwikcluster",
    "label_propagation",
    "plm_cluster",
    "scd_cluster",
    "tectonic_cluster",
]
