"""Dense-matrix sequential LambdaCC (the Veldt et al. MATLAB stand-in).

The paper's only prior LambdaCC Louvain implementation "is in MATLAB, and
it uses an adjacency matrix to represent the input graph; as such, it is
unable to efficiently perform sparse graph operations" and "cannot scale
to graphs of more than hundreds of vertices" (Appendix C.1).

This baseline reproduces that cost profile: a sequential Louvain whose
per-vertex best-move scans a full dense adjacency row — Theta(n) per
vertex per sweep, Theta(n^2) per sweep — so its (charged and wall-clock)
time explodes quadratically, while its output quality matches the sparse
SEQ-CC (the algorithm is the same; only the data structure differs).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng

#: Refuse inputs past this size — the point of the baseline is that dense
#: adjacency does not scale; benches should see the wall, not hang on it.
MAX_DENSE_VERTICES = 4000


def _dense_adjacency(graph: CSRGraph) -> np.ndarray:
    n = graph.num_vertices
    matrix = np.zeros((n, n), dtype=np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    matrix[src, graph.neighbors] = graph.weights
    return matrix


def dense_lambdacc_cluster(
    graph: CSRGraph,
    resolution: float = 0.01,
    max_sweeps: int = 100,
    seed: SeedLike = None,
    sched=None,
) -> Tuple[np.ndarray, int]:
    """Sequential dense-matrix LambdaCC Louvain (single coarsening level
    per recursion, like the reference); returns (labels, sweeps used).
    """
    n = graph.num_vertices
    if n > MAX_DENSE_VERTICES:
        raise ValueError(
            f"dense LambdaCC baseline refuses n={n} > {MAX_DENSE_VERTICES} "
            "(that inability to scale is the point of this baseline)"
        )
    rng = make_rng(seed)
    adjacency = _dense_adjacency(graph)
    node_weights = graph.node_weights.astype(np.float64)
    labels = np.arange(n, dtype=np.int64)
    cluster_weights = node_weights.copy()
    sweeps = 0
    for _ in range(max_sweeps):
        moved = 0
        for v in rng.permutation(n).tolist():
            row = adjacency[v]  # Theta(n) dense row scan
            current = int(labels[v])
            k_v = node_weights[v]
            # Gain per existing cluster, computed densely over all n slots.
            edge_to = np.bincount(labels, weights=row, minlength=n)
            exclude_self = np.zeros(n, dtype=np.float64)
            exclude_self[current] = k_v
            gains = edge_to - resolution * k_v * (cluster_weights - exclude_self)
            occupied = np.bincount(labels, minlength=n) > 0
            gains[~occupied] = 0.0  # moving to any empty slot = isolation
            best = int(np.argmax(gains))
            if gains[best] > gains[current] + 1e-12:
                labels[v] = best
                cluster_weights[current] -= k_v
                cluster_weights[best] += k_v
                moved += 1
            if sched is not None:
                sched.charge(work=4.0 * n, depth=4.0 * n, label="dense-lambdacc")
        sweeps += 1
        if moved == 0:
            break
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64), sweeps
