"""KwikCluster (Pivot) — Ailon, Charikar, Newman.

The sequential 3-approximation for correlation clustering on complete
graphs (equivalently LambdaCC at lambda = 0.5 on unweighted graphs, which
is the only setting C4/ClusterWild! support — Appendix C.1): draw a random
permutation; repeatedly take the first unclustered vertex as a *pivot*,
cluster it with all its unclustered (positive-edge) neighbors, and remove
them.

The paper's observation — reproduced by our benches — is that pivot
methods are very fast but typically achieve *negative* LambdaCC objective
and poor ground-truth precision/recall.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng


def kwikcluster(
    graph: CSRGraph,
    seed: SeedLike = None,
    permutation: Optional[np.ndarray] = None,
    sched=None,
) -> np.ndarray:
    """Cluster by sequential pivoting; returns dense assignment labels.

    ``permutation`` overrides the random order (used by C4's equivalence
    tests).  Positive-weight edges count as "similar".
    """
    n = graph.num_vertices
    rank_order = (
        np.asarray(permutation, dtype=np.int64)
        if permutation is not None
        else make_rng(seed).permutation(n).astype(np.int64)
    )
    assignments = np.full(n, -1, dtype=np.int64)
    work = 0.0
    for pivot in rank_order.tolist():
        if assignments[pivot] != -1:
            continue
        assignments[pivot] = pivot
        nbrs, wts = graph.neighborhood(pivot)
        work += nbrs.size + 1
        positive = nbrs[(wts > 0) & (assignments[nbrs] == -1)]
        assignments[positive] = pivot
    if sched is not None:
        sched.charge(work=work + n, depth=work + n, label="kwikcluster")
    _, dense = np.unique(assignments, return_inverse=True)
    return dense.astype(np.int64)
