"""Tectonic — motif (triangle)-aware graph clustering (Tsourakakis et al.).

Tectonic re-weights every edge by how strongly it is supported by
triangles, deletes edges whose support falls below a threshold ``theta``,
and returns the connected components of what remains.  We use the
wedge-closure form of the edge support,

    support(u, v) = 2 * t(u, v) / (d_u + d_v - 2),

the fraction of wedges through the edge that are closed (equal to the
paper's triangle-weight normalization up to the constant ``theta`` sweep
absorbs).  ``theta`` plays the role the paper sweeps over
``{0.01 x | x in [1, 299]}`` to trade precision against recall
(Figure 10).

The paper's key empirical finding — Tectonic matching PAR-CC on
amazon-like graphs but degrading on larger, denser graphs — falls out of
the support statistic: background edges in dense graphs pick up incidental
triangles, so no single threshold separates communities cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.triangles import edge_triangle_counts
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import connected_components
from repro.utils.validation import require_nonnegative


def edge_supports(graph: CSRGraph) -> np.ndarray:
    """Triangle support per stored directed adjacency entry (in [0, 1])."""
    n = graph.num_vertices
    triangle_counts = edge_triangle_counts(graph).astype(np.float64)
    degrees = graph.degrees().astype(np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    wedge_count = degrees[src] + degrees[graph.neighbors] - 2.0
    supports = np.zeros_like(triangle_counts)
    open_wedges = wedge_count > 0
    supports[open_wedges] = (
        2.0 * triangle_counts[open_wedges] / wedge_count[open_wedges]
    )
    return supports


def tectonic_cluster(
    graph: CSRGraph, theta: float = 0.05, sched=None
) -> np.ndarray:
    """Cluster by thresholded triangle support; returns dense labels.

    Higher ``theta`` keeps fewer edges: more, purer clusters (higher
    precision, lower recall).
    """
    require_nonnegative(theta, "theta")
    n = graph.num_vertices
    supports = edge_supports(graph)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    keep = supports >= theta
    kept_edges = np.stack([src[keep], graph.neighbors[keep]], axis=1)
    if sched is not None:
        # Triangle counting dominates: ~ sum over edges of min-degree work;
        # charged sequentially (the paper's Tectonic is sequential).
        degrees = graph.degrees().astype(np.float64)
        work = float((degrees[src] + degrees[graph.neighbors]).sum())
        sched.charge(work=work, depth=work, label="tectonic")
    if kept_edges.shape[0] == 0:
        return np.arange(n, dtype=np.int64)
    backbone = graph_from_edges(kept_edges, num_vertices=n)
    return connected_components(backbone)
