"""ClusterWild! — coordination-free parallel pivoting (Pan et al., 2015).

Unlike C4, ClusterWild! "ignores consistency": each round activates a
random batch of ``epsilon * |remaining|`` unclustered vertices as
simultaneous pivots, and every unclustered neighbor joins the
lowest-ranked adjacent batch pivot.  Adjacent pivots within a batch both
stand — the conflict that C4's waiting rule would have serialized — which
buys speed (fewer rounds, no waiting) at a small approximation penalty.
The paper reports it as the fastest and lowest-quality pivot variant.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require


def clusterwild_cluster(
    graph: CSRGraph,
    epsilon: float = 0.5,
    seed: SeedLike = None,
    sched=None,
) -> np.ndarray:
    """Run ClusterWild!; returns dense assignment labels."""
    require(0.0 < epsilon <= 1.0, f"epsilon must be in (0, 1], got {epsilon}")
    n = graph.num_vertices
    rng = make_rng(seed)
    order = rng.permutation(n).astype(np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    dst = graph.neighbors
    positive = graph.weights > 0
    src, dst = src[positive], dst[positive]

    assignments = np.full(n, -1, dtype=np.int64)
    int_max = np.iinfo(np.int64).max
    while True:
        unclustered = np.flatnonzero(assignments == -1)
        if unclustered.size == 0:
            break
        batch_size = max(1, int(epsilon * unclustered.size))
        # The lowest-ranked remaining vertices form the batch (the
        # algorithm's "next epsilon-fraction of the permutation").
        remaining_rank = rank[unclustered]
        batch = unclustered[np.argsort(remaining_rank)[:batch_size]]
        assignments[batch] = batch  # all batch members pivot, conflicts and all
        is_batch_pivot = np.zeros(n, dtype=bool)
        is_batch_pivot[batch] = True
        live = (assignments[dst] == -1) & is_batch_pivot[src]
        cs, cd = src[live], dst[live]
        if cd.size:
            best_pivot_rank = np.full(n, int_max, dtype=np.int64)
            np.minimum.at(best_pivot_rank, cd, rank[cs])
            winner = rank[cs] == best_pivot_rank[cd]
            assignments[cd[winner]] = cs[winner]
        if sched is not None:
            sched.charge(
                work=float(cs.size + unclustered.size),
                depth=float(np.log2(max(n, 2))),
                label="clusterwild",
            )
    _, dense = np.unique(assignments, return_inverse=True)
    return dense.astype(np.int64)
