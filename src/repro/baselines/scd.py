"""SCD — high-quality parallel community detection by WCC optimization
(Prat-Pérez, Dominguez-Sal, Larriba-Pey; WWW 2014).

SCD partitions by optimizing Weighted Community Clustering, a
triangle-based metric: for vertex ``x`` in community ``C``,

    WCC(x, C) = [ t(x, C) / t(x, V) ] *
                [ vt(x, V) / ( |C \\ {x}| + vt(x, V \\ C) ) ],

where ``t(x, S)`` counts triangles ``x`` closes with both partners in
``S`` and ``vt(x, S)`` counts vertices of ``S`` forming at least one
triangle with ``x`` (0 when ``x`` closes no triangles).

The implementation follows SCD's two phases:

1. *initial partition*: scan vertices by descending clustering
   coefficient; each unvisited vertex forms a community with its unvisited
   neighbors;
2. *partition improvement*: repeated best-movement passes where every
   vertex evaluates staying, leaving (singleton), or transferring to a
   neighboring community, scored by its own WCC contribution (the paper
   optimizes the global WCC with closed-form improvement estimates; the
   own-contribution hill-climb is the standard simplification and keeps
   the characteristic behaviour — one operating point, no resolution
   knob, triangle-dependent quality).

The paper's comparison (Appendix C.1): PAR-CC matches SCD's quality with
2–2.9x speedups on amazon/dblp/livejournal and far exceeds it on orkut,
where SCD's precision collapses to ~0.15.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.triangles import vertex_triangle_pairs
from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng

#: Minimum WCC improvement for a move to apply.
_IMPROVE_EPS = 1e-12


def _initial_partition(graph: CSRGraph, triangle_pairs: List[np.ndarray]) -> np.ndarray:
    """SCD phase 1: clustering-coefficient-ordered greedy seeding."""
    n = graph.num_vertices
    degrees = graph.degrees().astype(np.float64)
    triangles = np.asarray([p.shape[0] for p in triangle_pairs], dtype=np.float64)
    wedges = degrees * (degrees - 1.0) / 2.0
    coefficient = np.zeros(n, dtype=np.float64)
    open_w = wedges > 0
    coefficient[open_w] = triangles[open_w] / wedges[open_w]
    order = np.argsort(-coefficient, kind="stable")
    labels = np.full(n, -1, dtype=np.int64)
    for v in order.tolist():
        if labels[v] != -1:
            continue
        labels[v] = v
        nbrs = graph.neighbors[graph.offsets[v]: graph.offsets[v + 1]]
        unvisited = nbrs[labels[nbrs] == -1]
        labels[unvisited] = v
    return labels


def _wcc_of_vertex(
    pairs: np.ndarray,
    labels: np.ndarray,
    sizes: np.ndarray,
    community: int,
    in_community: bool,
) -> float:
    """WCC(x, community) for vertex ``x`` with triangle ``pairs``.

    ``in_community`` states whether ``x`` currently belongs to
    ``community`` (affects the |C \\ {x}| term).
    """
    t_total = pairs.shape[0]
    if t_total == 0:
        return 0.0
    label_y = labels[pairs[:, 0]]
    label_z = labels[pairs[:, 1]]
    t_in = int(((label_y == community) & (label_z == community)).sum())
    partners = np.unique(pairs.reshape(-1))
    vt_total = partners.size
    vt_in = int((labels[partners] == community).sum())
    vt_out = vt_total - vt_in
    members_excl_x = sizes[community] - (1 if in_community else 0)
    denominator = members_excl_x + vt_out
    if denominator <= 0:
        return 0.0
    return (t_in / t_total) * (vt_total / denominator)


def scd_cluster(
    graph: CSRGraph,
    max_iterations: int = 5,
    seed: SeedLike = None,
    sched=None,
    triangle_pairs: Optional[List[np.ndarray]] = None,
) -> np.ndarray:
    """Run SCD; returns dense assignment labels.

    ``triangle_pairs`` may be precomputed (benches reuse it across runs).
    """
    n = graph.num_vertices
    rng = make_rng(seed)
    if sched is not None and triangle_pairs is None:
        # Triangle enumeration scans every wedge: sum of d^2 checks.
        degrees = graph.degrees().astype(np.float64)
        sched.charge(
            work=float((degrees**2).sum()) / 2.0 + graph.num_directed_edges,
            depth=float(degrees.max()) if degrees.size else 1.0,
            label="scd-triangles",
        )
    pairs = triangle_pairs if triangle_pairs is not None else vertex_triangle_pairs(graph)
    labels = _initial_partition(graph, pairs)
    sizes = np.bincount(labels, minlength=n).astype(np.int64)

    for _ in range(max_iterations):
        moved = 0
        pass_work = 0.0
        for v in rng.permutation(n).tolist():
            current = int(labels[v])
            nbrs = graph.neighbors[graph.offsets[v]: graph.offsets[v + 1]]
            candidates = np.unique(labels[nbrs])
            best_label = current
            best_score = _wcc_of_vertex(pairs[v], labels, sizes, current, True)
            # Leaving to a singleton scores 0 (no triangles stay inside).
            if best_score < -_IMPROVE_EPS:
                best_label, best_score = v, 0.0
            for c in candidates.tolist():
                if c == current:
                    continue
                score = _wcc_of_vertex(pairs[v], labels, sizes, c, False)
                if score > best_score + _IMPROVE_EPS:
                    best_label, best_score = c, score
            # Each candidate evaluation rescans v's triangle pairs and
            # partner set — the dominant WCC cost.
            pass_work += (pairs[v].shape[0] * 2.0 + nbrs.size) * (
                candidates.size + 1.0
            )
            if best_label != current and (
                best_label == v or sizes[best_label] > 0
            ):
                labels[v] = best_label
                sizes[current] -= 1
                sizes[best_label] += 1
                moved += 1
        if sched is not None:
            # SCD is shared-memory parallel over vertices.
            sched.charge(
                work=pass_work,
                depth=float(np.log2(max(n, 2))) * 8.0,
                label="scd-pass",
            )
        if moved == 0:
            break
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
