"""C4 — concurrency-safe parallel KwikCluster (Pan et al., NeurIPS 2015).

C4 runs KwikCluster's pivots concurrently but enforces serializability
with a waiting rule, so its output equals sequential KwikCluster on the
same random permutation (and inherits the 3-approximation).

Sequential KwikCluster's output admits a closed characterization, which is
what the parallel execution computes:

* the pivot set is the lexicographically-first maximal independent set
  (MIS) of the positive-edge graph under the permutation ranks;
* every non-pivot joins its minimum-rank pivot neighbor (the first pivot
  to reach it in the sequential order).

We realize the MIS with the standard round-based peeling — each round all
rank-local-minima among undecided vertices enter, their undecided
neighbors leave — which is exactly C4's effective schedule and yields its
parallel cost profile: per-round work proportional to the live subgraph,
O(log n) rounds w.h.p.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng


def lex_first_mis(
    src: np.ndarray,
    dst: np.ndarray,
    rank: np.ndarray,
    n: int,
    sched=None,
    label: str = "c4-mis",
) -> Tuple[np.ndarray, int]:
    """Lexicographically-first MIS under ``rank`` via round-based peeling.

    ``src``/``dst`` are the directed edge endpoints (both orientations).
    Returns ``(in_mis, rounds)``.
    """
    int_max = np.iinfo(np.int64).max
    undecided = np.ones(n, dtype=bool)
    in_mis = np.zeros(n, dtype=bool)
    rounds = 0
    while undecided.any():
        live = undecided[src] & undecided[dst]
        es, ed = src[live], dst[live]
        best_nbr_rank = np.full(n, int_max, dtype=np.int64)
        if es.size:
            np.minimum.at(best_nbr_rank, es, rank[ed])
        new_pivots = undecided & (rank < best_nbr_rank)
        in_mis |= new_pivots
        undecided &= ~new_pivots
        # Undecided neighbors of new pivots are excluded from the MIS.
        if es.size:
            excluded = ed[new_pivots[es]]
            undecided[excluded] = False
        rounds += 1
        if sched is not None:
            sched.charge(
                work=float(es.size + n // max(rounds, 1) + 1),
                depth=float(np.log2(max(n, 2))),
                label=label,
            )
    return in_mis, rounds


def c4_cluster(
    graph: CSRGraph,
    seed: SeedLike = None,
    sched=None,
    permutation: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run C4; returns dense assignment labels.

    The output matches :func:`repro.baselines.kwikcluster.kwikcluster` on
    the same permutation (serializability) — property-tested.
    """
    n = graph.num_vertices
    order = (
        np.asarray(permutation, dtype=np.int64)
        if permutation is not None
        else make_rng(seed).permutation(n).astype(np.int64)
    )
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    dst = graph.neighbors
    positive = graph.weights > 0
    src, dst = src[positive], dst[positive]

    in_mis, _rounds = lex_first_mis(src, dst, rank, n, sched=sched)

    # Non-pivots join their minimum-rank pivot neighbor.
    assignments = np.arange(n, dtype=np.int64)  # pivots (and isolated) stay
    to_nonpivot = in_mis[src] & ~in_mis[dst]
    ps, pd = src[to_nonpivot], dst[to_nonpivot]
    if pd.size:
        int_max = np.iinfo(np.int64).max
        best_pivot_rank = np.full(n, int_max, dtype=np.int64)
        np.minimum.at(best_pivot_rank, pd, rank[ps])
        claimed = best_pivot_rank < int_max
        assignments[claimed] = order[best_pivot_rank[claimed]]
        if sched is not None:
            sched.charge(
                work=float(ps.size + n),
                depth=float(np.log2(max(n, 2))),
                label="c4-claim",
            )
    _, dense = np.unique(assignments, return_inverse=True)
    return dense.astype(np.int64)
