"""NetworKit-style PLM (parallel Louvain modularity) baseline.

NetworKit's PLM (Staudt & Meyerhenke) is, like PAR-MOD, an asynchronous
parallel Louvain with a completion bound of ``num_iter = 32`` (the value
the paper also sets for PAR-MOD when comparing, Appendix C.1).  The
paper attributes its 1.89x-average / up-to-3.5x speedup over NetworKit to
one difference: NetworKit "does not efficiently parallelize the graph
compression step between rounds of best vertex moves", whereas the
paper's compression aggregates intra-cluster edges with a work-efficient
parallel sort (Section 4.2).

Accordingly this baseline is exactly our PAR-MOD pipeline with the
*non-work-efficient* compression cost model swapped in
(:func:`repro.graphs.quotient.compress_graph_naive`) and no multi-level
refinement (plain PLM; NetworKit's PLMR variant adds it).  Clustering
*quality* is therefore comparable by construction — matching the paper's
"0.99–1.00x the modularity given by NetworKit" — while the simulated-time
gap isolates the compression difference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.core.louvain_par import multilevel_louvain
from repro.core.objective import (
    lambdacc_objective,
    modularity_graph,
    modularity_lambda,
)
from repro.core.result import ClusterResult
from repro.graphs.csr import CSRGraph
from repro.graphs.quotient import compress_graph_naive
from repro.graphs.stats import MemoryTracker
from repro.parallel.scheduler import SimulatedScheduler
from repro.utils.rng import make_rng
from repro.utils.timing import WallTimer

#: NetworKit's default iteration bound.
NETWORKIT_NUM_ITER = 32


def plm_cluster(
    graph: CSRGraph,
    gamma: float = 1.0,
    num_workers: int = 60,
    seed: Optional[int] = None,
    num_iter: int = NETWORKIT_NUM_ITER,
) -> ClusterResult:
    """Cluster with the NetworKit-PLM cost model; returns a ClusterResult."""
    config = ClusteringConfig(
        objective=Objective.MODULARITY,
        resolution=gamma,
        parallel=True,
        mode=Mode.ASYNC,
        frontier=Frontier.VERTEX_NEIGHBORS,
        refine=False,
        num_iter=num_iter,
        num_workers=num_workers,
        seed=seed,
    )
    working = modularity_graph(graph)
    effective_lambda = modularity_lambda(graph, gamma)
    total_weight = graph.total_edge_weight
    sched = SimulatedScheduler(num_workers=num_workers, machine=config.machine)
    memory = MemoryTracker()
    rng = make_rng(seed)
    with WallTimer() as timer:
        assignments, stats = multilevel_louvain(
            working,
            effective_lambda,
            config,
            run_best_moves,
            sched=sched,
            rng=rng,
            memory=memory,
            compress_fn=compress_graph_naive,
        )
    _, dense = np.unique(assignments, return_inverse=True)
    dense = dense.astype(np.int64)
    f_value = lambdacc_objective(working, dense, effective_lambda)
    return ClusterResult(
        assignments=dense,
        objective=2.0 * f_value,
        f_objective=f_value,
        modularity=f_value / total_weight,
        resolution=gamma,
        effective_lambda=effective_lambda,
        config=config,
        stats=stats,
        ledger=sched.ledger,
        machine=config.machine,
        peak_memory_bytes=memory.peak_bytes,
        input_bytes=graph.nbytes,
        wall_seconds=timer.elapsed,
        seed=seed,
        extras={"baseline": "networkit-plm"},
    )
