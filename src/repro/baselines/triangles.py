"""Triangle-counting substrate (shared by Tectonic and SCD).

Per-edge triangle counts come from the sparse-matrix identity
``T = (A @ A) ⊙ A``: entry (u, v) of ``A @ A`` counts common neighbors of
``u`` and ``v``, masked to actual edges.  :func:`vertex_triangle_pairs`
additionally enumerates, per vertex, the pairs of its neighbors that close
triangles — the structure SCD's WCC computation consumes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.graphs.csr import CSRGraph


def _adjacency(graph: CSRGraph) -> csr_matrix:
    n = graph.num_vertices
    indptr = graph.offsets.astype(np.int64)
    return csr_matrix(
        (np.ones(graph.num_directed_edges, dtype=np.int64), graph.neighbors, indptr),
        shape=(n, n),
    )


def edge_triangle_counts(graph: CSRGraph) -> np.ndarray:
    """Triangles through each stored directed adjacency entry.

    Returned array aligns with ``graph.neighbors``; symmetric entries carry
    equal counts.
    """
    n = graph.num_vertices
    counts = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if graph.num_directed_edges == 0:
        return counts
    adjacency = _adjacency(graph)
    paths = adjacency @ adjacency  # (u, v) -> number of common neighbors
    triangles = paths.multiply(adjacency).tocoo()
    # Align the (possibly sparser) triangle entries with our CSR layout via
    # the shared sorted (row * n + col) key.
    tri_key = triangles.row.astype(np.int64) * n + triangles.col.astype(np.int64)
    order = np.argsort(tri_key)
    tri_key = tri_key[order]
    tri_data = triangles.data[order]
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    edge_key = src * n + graph.neighbors
    positions = np.searchsorted(edge_key, tri_key)
    counts[positions] = tri_data
    return counts


def total_triangles(graph: CSRGraph) -> int:
    """Total number of triangles in the graph."""
    counts = edge_triangle_counts(graph)
    # Each triangle is counted once per directed entry of its three edges.
    return int(counts.sum()) // 6


def vertex_triangle_pairs(graph: CSRGraph) -> List[np.ndarray]:
    """Per vertex ``x``, the (y, z) neighbor pairs closing a triangle.

    ``result[x]`` is an ``(t_x, 2)`` array with ``y < z``; ``t_x`` is the
    number of triangles incident on ``x``.  Storage is ``3 * #triangles``
    pairs total.
    """
    n = graph.num_vertices
    neighbor_sets: List[set] = [
        set(graph.neighbors[graph.offsets[v]: graph.offsets[v + 1]].tolist())
        for v in range(n)
    ]
    out: List[np.ndarray] = []
    for x in range(n):
        nbrs = graph.neighbors[graph.offsets[x]: graph.offsets[x + 1]]
        pairs: List[Tuple[int, int]] = []
        nbr_list = nbrs.tolist()
        for i, y in enumerate(nbr_list):
            y_set = neighbor_sets[y]
            for z in nbr_list[i + 1:]:
                if z in y_set:
                    pairs.append((y, z) if y < z else (z, y))
        out.append(
            np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
            if pairs
            else np.zeros((0, 2), dtype=np.int64)
        )
    return out
