"""Label propagation (Raghavan–Albert–Kumara, the paper's reference [32]).

The near-linear-time community detection baseline the paper cites when
discussing synchronous-update oscillation: each vertex repeatedly adopts
the (weighted-) majority label among its neighbors.  We implement the
standard *asynchronous* variant (random order, immediate updates, ties
broken randomly), which converges, plus the synchronous variant that
exhibits the classic label oscillation — a nice external witness for the
paper's Section 3.2.1 discussion.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, make_rng


def _majority_label(
    labels: np.ndarray, nbrs: np.ndarray, weights: np.ndarray, rng
) -> int:
    candidate_labels = labels[nbrs]
    unique, inverse = np.unique(candidate_labels, return_inverse=True)
    scores = np.bincount(inverse, weights=weights, minlength=unique.size)
    best = scores.max()
    winners = unique[scores >= best - 1e-12]
    if winners.size == 1:
        return int(winners[0])
    return int(winners[rng.integers(0, winners.size)])


def label_propagation(
    graph: CSRGraph,
    max_iterations: int = 50,
    seed: SeedLike = None,
    synchronous: bool = False,
    sched=None,
) -> np.ndarray:
    """Cluster by (a)synchronous label propagation; returns dense labels.

    ``synchronous=True`` updates all labels in lockstep — prone to the
    oscillation the paper's Figure 1 illustrates for Louvain; the default
    asynchronous schedule converges.
    """
    n = graph.num_vertices
    rng = make_rng(seed)
    labels = np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    for _ in range(max_iterations):
        changed = 0
        if synchronous:
            new_labels = labels.copy()
            for v in range(n):
                lo, hi = graph.offsets[v], graph.offsets[v + 1]
                if lo == hi:
                    continue
                new_labels[v] = _majority_label(
                    labels, graph.neighbors[lo:hi], graph.weights[lo:hi], rng
                )
            changed = int((new_labels != labels).sum())
            labels = new_labels
        else:
            for v in rng.permutation(n).tolist():
                lo, hi = graph.offsets[v], graph.offsets[v + 1]
                if lo == hi:
                    continue
                new = _majority_label(
                    labels, graph.neighbors[lo:hi], graph.weights[lo:hi], rng
                )
                if new != labels[v]:
                    labels[v] = new
                    changed += 1
        if sched is not None:
            sched.charge(
                work=float(src.size + n),
                depth=float(np.log2(max(n, 2))) * 4.0,
                label="label-prop",
            )
        if changed == 0:
            break
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)
