"""The Appendix D reduction: monotone CVP instance -> LambdaCC graph.

Construction (paper, Appendix D), with lambda = 0:

* vertices ``t`` and ``f`` joined by a large negative edge;
* each literal joined to its truth terminal (``t`` if true else ``f``)
  by a large positive edge;
* per gate ``g_k`` reading ``g_i op g_j`` (with gate weight
  ``w_ijk = min(f(c(g_i)), f(c(g_j)))`` where ``f(c_i)`` is the inverse
  prefix product of DAG degrees along the topological order):

  - edges ``(g_i, g_k)`` and ``(g_j, g_k)`` of weight ``w_ijk``;
  - a helper ``g'_k`` joined to ``g_k`` with weight ``(2 + 2/3 eps) w_ijk``;
  - for OR:  ``(g_k, t)`` weight ``(1 + eps) w_ijk``,
             ``(g_k, f)`` weight ``(1 + eps/2) w_ijk``;
  - for AND: the ``t``/``f`` weights swapped.

Weights are globally rescaled so the smallest gate weight is 1 (the
reduction is scale-invariant at lambda = 0 but floating point is not), and
the "large enough constant" is ten times the total positive gate mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import CircuitError
from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.pcomplete.circuit import GateKind, MonotoneCircuit

#: The fixed small epsilon of the construction.
EPSILON = 0.1


@dataclass
class CircuitReduction:
    """The reduction graph and its vertex layout."""

    graph: CSRGraph
    circuit: MonotoneCircuit
    assignment: np.ndarray  # literal truth values
    t_vertex: int
    f_vertex: int
    literal_vertices: np.ndarray  # per circuit input (x_i)
    negation_vertices: np.ndarray  # per circuit input (not x_i)
    gate_vertices: np.ndarray  # per gate (g_k)
    helper_vertices: np.ndarray  # per gate (g'_k)
    epsilon: float = EPSILON

    def node_vertex(self, node: int) -> int:
        """Graph vertex for circuit node id (literal or gate)."""
        if node < self.circuit.num_inputs:
            return int(self.literal_vertices[node])
        return int(self.gate_vertices[node - self.circuit.num_inputs])


def _out_degrees(circuit: MonotoneCircuit) -> np.ndarray:
    """Fan-out (number of consuming gates) per circuit node."""
    out = np.zeros(circuit.num_nodes, dtype=np.int64)
    for gate in circuit.gates:
        out[gate.in1] += 1
        out[gate.in2] += 1
    return out


def _gate_weights(circuit: MonotoneCircuit, epsilon: float) -> np.ndarray:
    """Per-gate weight ``w_ijk`` enforcing the construction's invariants.

    The paper defines ``w_ijk`` through inverse prefix products of DAG
    degrees and argues gates ignore their out-neighbors because the
    out-edge weight sum stays below ``w_ijk``.  Tracing the proof's margin
    analysis, the binding constraint is tighter: a waiting gate sits in its
    two-vertex helper cluster with margin only ``(2 + 2/3 eps) - (2 + 1/2
    eps) = eps/6`` times ``w_ijk`` over the strongest one-input terminal
    attraction, so consumer pull must stay below ``eps/6 * w_ijk`` or a
    gate can be dragged to the wrong terminal (we hit exactly this on
    random circuits).  We therefore assign weights by a fan-out budget
    recursion in topological order:

        w(literal) = 1
        w(gate m)  = min over inputs i of
                     (eps / 12) * w(i) / max(outdeg(i), 1)

    so the consumers of any node ``k`` receive at most ``eps/12 * w(k)``
    in total — half the proof's margin.  Like the paper's form, weights
    shrink geometrically with depth, hence the float-overflow guard.
    """
    out_deg = _out_degrees(circuit)
    budget = epsilon / 12.0
    node_weight = np.ones(circuit.num_nodes, dtype=np.float64)
    gate_weights = np.empty(circuit.num_gates, dtype=np.float64)
    for index, gate in enumerate(circuit.gates):
        w = min(
            budget * node_weight[gate.in1] / max(out_deg[gate.in1], 1),
            budget * node_weight[gate.in2] / max(out_deg[gate.in2], 1),
        )
        if w < 1e-290:
            raise CircuitError(
                "circuit too deep for float64 gate weights; "
                "use fewer than ~130 levels"
            )
        gate_weights[index] = w
        node_weight[circuit.num_inputs + index] = w
    return gate_weights


def reduce_circuit(
    circuit: MonotoneCircuit,
    assignment: Sequence[bool],
    epsilon: float = EPSILON,
) -> CircuitReduction:
    """Build the Appendix D graph for ``circuit`` under ``assignment``."""
    if not 0.0 < epsilon < 0.5:
        raise CircuitError(f"epsilon must be in (0, 0.5), got {epsilon}")
    assignment = np.asarray(assignment, dtype=bool)
    if assignment.shape != (circuit.num_inputs,):
        raise CircuitError(
            f"assignment must have {circuit.num_inputs} values, got {assignment.shape}"
        )

    gate_weights = _gate_weights(circuit, epsilon)
    gate_weights = gate_weights / gate_weights.min()  # rescale smallest to 1

    # Vertex layout: t, f, literals, negated literals, gates, helpers.
    t_vertex, f_vertex = 0, 1
    literal_vertices = 2 + np.arange(circuit.num_inputs, dtype=np.int64)
    negation_vertices = literal_vertices + circuit.num_inputs
    gate_vertices = (
        2 + 2 * circuit.num_inputs + np.arange(circuit.num_gates, dtype=np.int64)
    )
    helper_vertices = gate_vertices + circuit.num_gates
    num_vertices = 2 + 2 * circuit.num_inputs + 2 * circuit.num_gates

    def vertex_of(node: int) -> int:
        if node < circuit.num_inputs:
            return int(literal_vertices[node])
        return int(gate_vertices[node - circuit.num_inputs])

    edges: List[tuple] = []
    weights: List[float] = []

    def add(u: int, v: int, w: float) -> None:
        edges.append((u, v))
        weights.append(w)

    for index, gate in enumerate(circuit.gates):
        w = float(gate_weights[index])
        g_k = int(gate_vertices[index])
        add(vertex_of(gate.in1), g_k, w)
        add(vertex_of(gate.in2), g_k, w)
        add(g_k, int(helper_vertices[index]), (2.0 + (2.0 / 3.0) * epsilon) * w)
        if gate.kind is GateKind.OR:
            add(g_k, t_vertex, (1.0 + epsilon) * w)
            add(g_k, f_vertex, (1.0 + 0.5 * epsilon) * w)
        else:
            add(g_k, t_vertex, (1.0 + 0.5 * epsilon) * w)
            add(g_k, f_vertex, (1.0 + epsilon) * w)

    big = 10.0 * (sum(abs(w) for w in weights) + 1.0)
    add(t_vertex, f_vertex, -big)
    # Both each literal and its negation exist as vertices (the paper's
    # construction); each anchors to its truth terminal, which guarantees
    # both t and f hold a BIG anchor and never drift into gate clusters.
    for input_id in range(circuit.num_inputs):
        terminal = t_vertex if assignment[input_id] else f_vertex
        other = f_vertex if assignment[input_id] else t_vertex
        add(int(literal_vertices[input_id]), terminal, big)
        add(int(negation_vertices[input_id]), other, big)

    graph = graph_from_edges(
        np.asarray(edges, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64),
        num_vertices=num_vertices,
    )
    return CircuitReduction(
        graph=graph,
        circuit=circuit,
        assignment=assignment,
        t_vertex=t_vertex,
        f_vertex=f_vertex,
        literal_vertices=literal_vertices,
        negation_vertices=negation_vertices,
        gate_vertices=gate_vertices,
        helper_vertices=helper_vertices,
        epsilon=epsilon,
    )
