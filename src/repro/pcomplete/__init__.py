"""Appendix D: P-completeness of Louvain for the CC objective.

The paper proves that producing the Louvain method's clustering is
P-complete via an NC reduction from the monotone circuit value problem
(CVP): a circuit plus its input assignment become a weighted graph on
which best-local-moves converge with every gate vertex clustered with the
``t`` (true) or ``f`` (false) terminal according to the gate's value.

* :mod:`repro.pcomplete.circuit`   — monotone circuit DAGs + evaluation;
* :mod:`repro.pcomplete.reduction` — the Appendix D graph construction;
* :mod:`repro.pcomplete.solver`    — solve CVP by running Louvain best
  moves on the reduction graph (the constructive side of the proof,
  exercised by tests on random circuits).
"""

from repro.pcomplete.circuit import Gate, GateKind, MonotoneCircuit
from repro.pcomplete.reduction import CircuitReduction, reduce_circuit
from repro.pcomplete.solver import solve_circuit_via_louvain

__all__ = [
    "CircuitReduction",
    "Gate",
    "GateKind",
    "MonotoneCircuit",
    "reduce_circuit",
    "solve_circuit_via_louvain",
]
