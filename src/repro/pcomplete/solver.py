"""Solve monotone CVP by running Louvain best moves on the reduction graph.

The constructive half of the Appendix D proof: best-local-moves run to
convergence at lambda = 0 cluster every gate vertex with ``t`` or ``f``
according to its value in the circuit, so the output gate's cluster *is*
the circuit's output.  Tests validate this on exhaustive small circuits
and random larger ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import ClusteringConfig, Frontier, Objective
from repro.core.louvain_seq import sequential_best_moves
from repro.core.state import ClusterState
from repro.pcomplete.circuit import MonotoneCircuit
from repro.pcomplete.reduction import CircuitReduction, reduce_circuit
from repro.utils.rng import SeedLike, make_rng

#: Convergence bound for the best-moves process (the reduction converges in
#: O(circuit depth) sweeps; this is a safety net, not a tuning knob).
_MAX_SWEEPS = 10_000


def louvain_clustering_of_reduction(
    reduction: CircuitReduction, seed: SeedLike = None
) -> np.ndarray:
    """Best-local-moves clustering (to convergence) of a reduction graph."""
    config = ClusteringConfig(
        objective=Objective.CORRELATION,
        resolution=0.0,
        parallel=False,
        frontier=Frontier.ALL,
        refine=False,
        num_iter=_MAX_SWEEPS,
    )
    state = ClusterState.singletons(reduction.graph)
    sequential_best_moves(
        reduction.graph,
        state,
        resolution=0.0,
        config=config,
        rng=make_rng(seed),
    )
    return state.assignments.copy()


def solve_circuit_via_louvain(
    circuit: MonotoneCircuit,
    assignment: Sequence[bool],
    seed: SeedLike = None,
) -> bool:
    """Evaluate ``circuit`` on ``assignment`` through the reduction.

    Raises ``AssertionError`` if the clustering violates the reduction's
    invariants (t and f must separate; the output gate must join one).
    """
    reduction = reduce_circuit(circuit, assignment)
    clusters = louvain_clustering_of_reduction(reduction, seed=seed)
    t_cluster = clusters[reduction.t_vertex]
    f_cluster = clusters[reduction.f_vertex]
    assert t_cluster != f_cluster, "t and f collapsed into one cluster"
    output_vertex = reduction.node_vertex(circuit.output_node)
    out_cluster = clusters[output_vertex]
    assert out_cluster in (t_cluster, f_cluster), (
        "output gate clustered with neither t nor f"
    )
    return bool(out_cluster == t_cluster)
