"""Monotone circuits (AND/OR gates over literal inputs).

Nodes are numbered: literals ``0 .. num_inputs-1``, then gates in
topological order (each gate may read literals or earlier gates).  The
last gate is the circuit output.  Because the CVP instance fixes the truth
assignment, negated literals are modeled simply as inputs whose value is
the negation — matching the paper's treatment (literals and their
negations are separate vertices wired to ``t``/``f`` by their fixed
truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

import numpy as np

from repro.errors import CircuitError
from repro.utils.rng import SeedLike, make_rng


class GateKind(Enum):
    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class Gate:
    """A two-input monotone gate; inputs are node ids strictly below it."""

    kind: GateKind
    in1: int
    in2: int


class MonotoneCircuit:
    """A monotone circuit over ``num_inputs`` literal inputs."""

    def __init__(self, num_inputs: int, gates: Sequence[Gate]) -> None:
        if num_inputs < 1:
            raise CircuitError(f"need at least one input, got {num_inputs}")
        if not gates:
            raise CircuitError("need at least one gate")
        self.num_inputs = num_inputs
        self.gates: List[Gate] = list(gates)
        for index, gate in enumerate(self.gates):
            node_id = num_inputs + index
            for pin in (gate.in1, gate.in2):
                if not 0 <= pin < node_id:
                    raise CircuitError(
                        f"gate {index} reads node {pin}, not below its id {node_id}"
                    )

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nodes(self) -> int:
        return self.num_inputs + self.num_gates

    @property
    def output_node(self) -> int:
        return self.num_nodes - 1

    def evaluate(self, inputs: Sequence[bool]) -> np.ndarray:
        """Value of every node under the given input assignment."""
        if len(inputs) != self.num_inputs:
            raise CircuitError(
                f"expected {self.num_inputs} input values, got {len(inputs)}"
            )
        values = np.zeros(self.num_nodes, dtype=bool)
        values[: self.num_inputs] = np.asarray(inputs, dtype=bool)
        for index, gate in enumerate(self.gates):
            a = values[gate.in1]
            b = values[gate.in2]
            values[self.num_inputs + index] = (
                (a and b) if gate.kind is GateKind.AND else (a or b)
            )
        return values

    def output(self, inputs: Sequence[bool]) -> bool:
        """The circuit's output value."""
        return bool(self.evaluate(inputs)[self.output_node])


def random_circuit(
    num_inputs: int, num_gates: int, seed: SeedLike = None
) -> MonotoneCircuit:
    """A random layered monotone circuit (for property tests/benches)."""
    rng = make_rng(seed)
    gates: List[Gate] = []
    for index in range(num_gates):
        node_id = num_inputs + index
        in1 = int(rng.integers(0, node_id))
        in2 = int(rng.integers(0, node_id))
        kind = GateKind.AND if rng.random() < 0.5 else GateKind.OR
        gates.append(Gate(kind, in1, in2))
    return MonotoneCircuit(num_inputs, gates)
