"""Cluster conductance (cut quality), a standard community metric.

For a vertex set ``S``, ``phi(S) = cut(S) / min(vol(S), vol(V \\ S))``
with weighted cut and volume.  Tectonic optimizes a triangle-weighted
variant of exactly this quantity; reporting edge conductance alongside
the LambdaCC objective lets users compare the two families' outputs on a
neutral axis.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graphs.csr import CSRGraph


def cluster_conductances(graph: CSRGraph, assignments: np.ndarray) -> np.ndarray:
    """Conductance per cluster (indexed by dense cluster label).

    Clusters with zero volume (isolated vertices) get conductance 0 by
    convention; a cluster spanning the entire volume also gets 0 (there
    is nothing to cut).
    """
    assignments = np.asarray(assignments, dtype=np.int64)
    if assignments.shape != (graph.num_vertices,):
        raise ValueError(
            f"assignments must have shape ({graph.num_vertices},), "
            f"got {assignments.shape}"
        )
    _, dense = np.unique(assignments, return_inverse=True)
    dense = dense.astype(np.int64)
    num_clusters = int(dense.max()) + 1 if dense.size else 0

    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
    )
    cut = np.zeros(num_clusters, dtype=np.float64)
    volume = np.zeros(num_clusters, dtype=np.float64)
    if src.size:
        crossing = dense[src] != dense[graph.neighbors]
        np.add.at(cut, dense[src[crossing]], graph.weights[crossing])
        np.add.at(volume, dense[src], graph.weights)
    volume += 2.0 * np.bincount(dense, weights=graph.self_loops, minlength=num_clusters)
    total_volume = float(volume.sum())

    conductances = np.zeros(num_clusters, dtype=np.float64)
    for c in range(num_clusters):
        denominator = min(volume[c], total_volume - volume[c])
        if denominator > 0:
            conductances[c] = cut[c] / denominator
    return conductances


def conductance_summary(graph: CSRGraph, assignments: np.ndarray) -> Dict[str, float]:
    """Mean / median / max conductance over clusters."""
    phis = cluster_conductances(graph, assignments)
    if phis.size == 0:
        return {"mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "mean": float(phis.mean()),
        "median": float(np.median(phis)),
        "max": float(phis.max()),
    }
