"""B-cubed precision and recall (extended for overlapping ground truth).

B-cubed scores each *item* by the correctness of its cluster
neighborhood, then averages over items — unlike the paper's
community-matching metric (which averages over ground-truth communities)
it cannot be gamed by many tiny or one giant cluster, making it a useful
second opinion on the same sweeps.

For item pairs (i, j): let ``C(i,j)`` = 1 if i, j share a cluster and
``L(i,j)`` = number of ground-truth communities they share (capped
against the cluster multiplicity in the standard extended definition;
with disjoint clusters, min(L, 1)).

    precision(i) = avg over j sharing i's cluster of  min(L(i,j), 1)
    recall(i)    = avg over j sharing a community with i of C(i,j)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.eval.ground_truth import PrecisionRecall


def _community_sets(num_items: int, communities: Sequence[np.ndarray]) -> List[set]:
    member_of: List[set] = [set() for _ in range(num_items)]
    for index, community in enumerate(communities):
        for item in np.asarray(community).tolist():
            member_of[item].add(index)
    return member_of


def bcubed(
    assignments: np.ndarray, communities: Sequence[np.ndarray]
) -> PrecisionRecall:
    """B-cubed precision/recall of ``assignments`` against communities.

    Items in no ground-truth community are skipped for recall (they have
    no obligations) but still count toward the precision of clusters they
    inhabit.
    """
    assignments = np.asarray(assignments, dtype=np.int64)
    n = assignments.size
    if not len(communities):
        raise ValueError("need at least one ground-truth community")
    member_of = _community_sets(n, communities)

    order = np.argsort(assignments, kind="stable")
    boundaries = np.flatnonzero(np.diff(assignments[order])) + 1
    clusters = np.split(order, boundaries)

    precisions: List[float] = []
    for cluster in clusters:
        members = cluster.tolist()
        for i in members:
            if not member_of[i] and len(members) > 1:
                # i has no community: every cluster-mate is a precision miss.
                precisions.append(0.0 if len(members) > 1 else 1.0)
                continue
            good = sum(
                1 for j in members if member_of[i] & member_of[j] or i == j
            )
            precisions.append(good / len(members))

    recalls: List[float] = []
    for community in communities:
        members = np.asarray(community, dtype=np.int64)
        labels = assignments[members]
        # For each item, the fraction of its community sharing its cluster.
        unique, counts = np.unique(labels, return_counts=True)
        count_of = dict(zip(unique.tolist(), counts.tolist()))
        for label in labels.tolist():
            recalls.append(count_of[label] / members.size)

    return PrecisionRecall(
        precision=float(np.mean(precisions)), recall=float(np.mean(recalls))
    )
