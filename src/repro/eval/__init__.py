"""Clustering quality evaluation.

* :mod:`repro.eval.ground_truth` — average precision/recall against
  (overlapping) ground-truth communities, using the paper's
  largest-intersection matching (Section 4, following Tectonic's
  methodology);
* :mod:`repro.eval.ari` / :mod:`repro.eval.nmi` — Adjusted Rand Index and
  Normalized Mutual Information for disjoint label comparisons
  (Figures 15–16);
* :mod:`repro.eval.pr_curve` — resolution sweeps producing the paper's
  precision/recall curves (Figures 9, 10, 14).
"""

from repro.eval.ari import adjusted_rand_index
from repro.eval.bcubed import bcubed
from repro.eval.conductance import cluster_conductances, conductance_summary
from repro.eval.consensus import consensus_clustering, consensus_from_runs
from repro.eval.ground_truth import average_precision_recall, match_communities
from repro.eval.nmi import normalized_mutual_information
from repro.eval.pr_curve import pr_curve, pr_dominates
from repro.eval.report import cluster_report, compare_reports

__all__ = [
    "adjusted_rand_index",
    "average_precision_recall",
    "bcubed",
    "cluster_conductances",
    "cluster_report",
    "compare_reports",
    "conductance_summary",
    "consensus_clustering",
    "consensus_from_runs",
    "match_communities",
    "normalized_mutual_information",
    "pr_curve",
    "pr_dominates",
]
