"""Normalized Mutual Information (from scratch).

NMI(U, V) = I(U; V) / sqrt(H(U) H(V)) with natural-log entropies — the
normalization the clustering literature (and Figures 15–16's NMI axis)
conventionally uses.  1 means identical partitions, 0 independence.
"""

from __future__ import annotations

import numpy as np


def _entropy(counts: np.ndarray, n: int) -> float:
    probs = counts[counts > 0].astype(np.float64) / n
    return float(-(probs * np.log(probs)).sum())


def mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """I(A; B) in nats for two disjoint labelings."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError(
            f"labelings must align: {labels_a.shape} vs {labels_b.shape}"
        )
    n = labels_a.size
    if n == 0:
        return 0.0
    _, a, counts_a = np.unique(labels_a, return_inverse=True, return_counts=True)
    _, b, counts_b = np.unique(labels_b, return_inverse=True, return_counts=True)
    num_b = counts_b.size
    key = a.astype(np.int64) * num_b + b
    cells, joint = np.unique(key, return_counts=True)
    p_joint = joint.astype(np.float64) / n
    p_a = counts_a[(cells // num_b).astype(np.int64)].astype(np.float64) / n
    p_b = counts_b[(cells % num_b).astype(np.int64)].astype(np.float64) / n
    return float((p_joint * np.log(p_joint / (p_a * p_b))).sum())


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """Sqrt-normalized NMI in [0, 1]."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    n = labels_a.size
    if n == 0:
        return 1.0
    _, counts_a = np.unique(labels_a, return_counts=True)
    _, counts_b = np.unique(labels_b, return_counts=True)
    h_a = _entropy(counts_a, n)
    h_b = _entropy(counts_b, n)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both trivial partitions, identical by convention
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    return mutual_information(labels_a, labels_b) / float(np.sqrt(h_a * h_b))
