"""Average precision/recall against ground-truth communities.

Methodology (Section 4, matching Tsourakakis et al.'s Tectonic
evaluation): ground-truth communities may overlap, so for each
ground-truth community ``c`` we match the *cluster* ``c'`` with the
largest intersection with ``c`` (a cluster may be matched to several or
no communities), then report

    precision(c) = |c ∩ c'| / |c'|      recall(c) = |c ∩ c'| / |c|

averaged over communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PrecisionRecall:
    """An (average precision, average recall) pair."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def match_communities(
    assignments: np.ndarray, communities: Sequence[np.ndarray]
) -> List[Tuple[int, int]]:
    """Best (cluster label, intersection size) per ground-truth community."""
    assignments = np.asarray(assignments, dtype=np.int64)
    matches: List[Tuple[int, int]] = []
    for community in communities:
        members = np.asarray(community, dtype=np.int64)
        labels = assignments[members]
        unique, counts = np.unique(labels, return_counts=True)
        best = int(np.argmax(counts))
        matches.append((int(unique[best]), int(counts[best])))
    return matches


def average_precision_recall(
    assignments: np.ndarray, communities: Sequence[np.ndarray]
) -> PrecisionRecall:
    """Average precision and recall under largest-intersection matching."""
    assignments = np.asarray(assignments, dtype=np.int64)
    if not len(communities):
        raise ValueError("need at least one ground-truth community")
    cluster_sizes = np.bincount(assignments)
    precisions = []
    recalls = []
    for community, (label, overlap) in zip(
        communities, match_communities(assignments, communities)
    ):
        size = len(community)
        precisions.append(overlap / cluster_sizes[label])
        recalls.append(overlap / size)
    return PrecisionRecall(
        precision=float(np.mean(precisions)), recall=float(np.mean(recalls))
    )
