"""Adjusted Rand Index (implemented from scratch, no sklearn).

ARI compares two disjoint labelings by pair-counting, adjusted for chance:

    ARI = (Index - ExpectedIndex) / (MaxIndex - ExpectedIndex)

with Index = sum over contingency cells of C(n_ij, 2), and the expectation
under the permutation model.  1 means identical partitions, ~0 random
agreement; it can be negative for worse-than-random.
"""

from __future__ import annotations

import numpy as np


def _comb2(x: np.ndarray) -> np.ndarray:
    """Vectorized C(x, 2) as float."""
    x = x.astype(np.float64)
    return x * (x - 1.0) / 2.0


def contingency_counts(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Flat nonzero contingency-table counts of two labelings."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError(
            f"labelings must align: {labels_a.shape} vs {labels_b.shape}"
        )
    _, a = np.unique(labels_a, return_inverse=True)
    _, b = np.unique(labels_b, return_inverse=True)
    num_b = int(b.max()) + 1 if b.size else 1
    key = a.astype(np.int64) * num_b + b
    _, counts = np.unique(key, return_counts=True)
    return counts


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """ARI between two disjoint labelings of the same items."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    n = labels_a.size
    if n < 2:
        return 1.0
    cells = contingency_counts(labels_a, labels_b)
    _, counts_a = np.unique(labels_a, return_counts=True)
    _, counts_b = np.unique(labels_b, return_counts=True)
    index = float(_comb2(cells).sum())
    sum_a = float(_comb2(counts_a).sum())
    sum_b = float(_comb2(counts_b).sum())
    total = float(_comb2(np.asarray([n])).sum())
    expected = sum_a * sum_b / total
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return (index - expected) / (max_index - expected)
