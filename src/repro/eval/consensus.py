"""Consensus clustering across asynchronous runs.

The asynchronous setting is nondeterministic (paper footnote 3: "the
average objective is non-deterministic when using the asynchronous
setting"), and the paper reports 10-run averages.  Beyond averaging
*metrics*, one can average the *clusterings themselves*: the consensus
(co-association) method keeps vertex pairs together iff they co-cluster
in at least a ``threshold`` fraction of runs, then takes connected
components of the resulting agreement graph.  The output is a stable,
seed-independent clustering — a practical complement the paper's users
would want.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graphs.builders import graph_from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import connected_components
from repro.utils.validation import require


def coassociation_counts(
    graph: CSRGraph, labelings: Sequence[np.ndarray]
) -> np.ndarray:
    """Per stored adjacency entry, in how many labelings its endpoints
    co-cluster.

    Restricting co-association to graph edges keeps the computation
    O(R * m) instead of O(R * n^2) — consensus merges can only keep
    together what some run already joined, and joined vertices in a
    LambdaCC run share positive paths.
    """
    require(len(labelings) > 0, "need at least one labeling")
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    counts = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for labels in labelings:
        labels = np.asarray(labels)
        if labels.shape != (n,):
            raise ValueError(f"labeling has shape {labels.shape}, expected ({n},)")
        counts += labels[src] == labels[graph.neighbors]
    return counts


def consensus_clustering(
    graph: CSRGraph,
    labelings: Sequence[np.ndarray],
    threshold: float = 0.5,
) -> np.ndarray:
    """Consensus labels: components of edges co-clustered in more than
    ``threshold`` of the labelings."""
    require(0.0 <= threshold <= 1.0, f"threshold must be in [0, 1], got {threshold}")
    counts = coassociation_counts(graph, labelings)
    needed = threshold * len(labelings)
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    keep = counts > needed
    if not keep.any():
        return np.arange(n, dtype=np.int64)
    agreement = graph_from_edges(
        np.stack([src[keep], graph.neighbors[keep]], axis=1), num_vertices=n
    )
    return connected_components(agreement)


def consensus_from_runs(
    graph: CSRGraph,
    cluster_fn: Callable[[int], np.ndarray],
    num_runs: int = 10,
    threshold: float = 0.5,
    seeds: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Run ``cluster_fn(seed)`` ``num_runs`` times and build the consensus.

    ``num_runs=10`` mirrors the paper's repetition count.
    """
    run_seeds = list(seeds) if seeds is not None else list(range(num_runs))
    labelings: List[np.ndarray] = [cluster_fn(seed) for seed in run_seeds]
    return consensus_clustering(graph, labelings, threshold=threshold)
