"""Per-clustering quality reports.

Aggregates everything the paper's evaluation looks at for one clustering
into a single record: objective values, cluster-size statistics,
intra-edge fraction, and (when ground truth is available) the matching
metrics — used by the examples and handy for downstream users comparing
methods on their own graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.objective import cc_objective, modularity
from repro.eval.ari import adjusted_rand_index
from repro.eval.ground_truth import average_precision_recall
from repro.eval.nmi import normalized_mutual_information
from repro.graphs.csr import CSRGraph


@dataclass
class ClusterReport:
    """Quality summary of one clustering on one graph."""

    num_clusters: int
    max_cluster_size: int
    mean_cluster_size: float
    median_cluster_size: float
    singleton_fraction: float
    intra_edge_fraction: float
    cc_objective: float
    modularity: float
    resolution: float
    precision: Optional[float] = None
    recall: Optional[float] = None
    f1: Optional[float] = None
    ari: Optional[float] = None
    nmi: Optional[float] = None

    def as_row(self) -> list:
        """Values in a stable order for table printing."""
        cells = [
            self.num_clusters,
            self.max_cluster_size,
            round(self.mean_cluster_size, 2),
            self.intra_edge_fraction,
            self.cc_objective,
            self.modularity,
        ]
        if self.precision is not None:
            cells += [self.precision, self.recall, self.f1]
        if self.ari is not None:
            cells += [self.ari, self.nmi]
        return cells


def intra_edge_fraction(graph: CSRGraph, assignments: np.ndarray) -> float:
    """Fraction of (undirected, weighted) edge mass inside clusters."""
    total = graph.total_edge_weight
    if total <= 0:
        return 0.0
    assignments = np.asarray(assignments)
    intra = float(graph.self_loops.sum())
    if graph.num_directed_edges:
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
        )
        same = assignments[src] == assignments[graph.neighbors]
        intra += float(graph.weights[same].sum()) / 2.0
    return intra / total


def cluster_report(
    graph: CSRGraph,
    assignments: np.ndarray,
    resolution: float = 0.01,
    communities: Optional[Sequence[np.ndarray]] = None,
    reference_labels: Optional[np.ndarray] = None,
) -> ClusterReport:
    """Build a :class:`ClusterReport` for ``assignments`` on ``graph``."""
    assignments = np.asarray(assignments, dtype=np.int64)
    if assignments.shape != (graph.num_vertices,):
        raise ValueError(
            f"assignments must have shape ({graph.num_vertices},), "
            f"got {assignments.shape}"
        )
    _, dense, counts = np.unique(assignments, return_inverse=True, return_counts=True)
    report = ClusterReport(
        num_clusters=int(counts.size),
        max_cluster_size=int(counts.max()),
        mean_cluster_size=float(counts.mean()),
        median_cluster_size=float(np.median(counts)),
        singleton_fraction=float((counts == 1).sum() / counts.size),
        intra_edge_fraction=intra_edge_fraction(graph, dense),
        cc_objective=cc_objective(graph, dense, resolution),
        modularity=modularity(graph, dense) if graph.total_edge_weight > 0 else 0.0,
        resolution=resolution,
    )
    if communities is not None and len(communities):
        pr = average_precision_recall(dense, communities)
        report.precision = pr.precision
        report.recall = pr.recall
        report.f1 = pr.f1
    if reference_labels is not None:
        reference = np.asarray(reference_labels)
        report.ari = adjusted_rand_index(dense, reference)
        report.nmi = normalized_mutual_information(dense, reference)
    return report


def compare_reports(
    graph: CSRGraph,
    labelings: dict,
    resolution: float = 0.01,
    communities: Optional[Sequence[np.ndarray]] = None,
    reference_labels: Optional[np.ndarray] = None,
) -> dict:
    """Reports for several methods' labelings on the same graph."""
    return {
        name: cluster_report(
            graph, labels, resolution=resolution,
            communities=communities, reference_labels=reference_labels,
        )
        for name, labels in labelings.items()
    }
