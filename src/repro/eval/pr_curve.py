"""Precision/recall curves over resolution sweeps (Figures 9, 10, 14).

The paper sweeps ``lambda in {0.01 x | x in [1, 99]}`` for PAR-CC and
``gamma in {0.02 * 1.2**x | x in [1, 99]}`` for PAR-MOD, plotting the
average-precision/average-recall point per resolution.  :func:`pr_curve`
runs such a sweep with any clustering callable; :func:`pr_dominates`
summarizes whether one curve (Pareto-)dominates another — the comparison
the paper makes between PAR-CC, PAR-MOD and Tectonic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.eval.ground_truth import PrecisionRecall, average_precision_recall


@dataclass
class PRPoint:
    """One sweep point: resolution, precision, recall (+ anything extra)."""

    resolution: float
    precision: float
    recall: float
    num_clusters: int = 0

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def paper_lambda_sweep(count: int = 99) -> np.ndarray:
    """The paper's lambda grid {0.01 x | x in [1, count]}."""
    return 0.01 * np.arange(1, count + 1)


def paper_gamma_sweep(count: int = 99) -> np.ndarray:
    """The paper's gamma grid {0.02 * 1.2**x | x in [1, count]}."""
    return 0.02 * 1.2 ** np.arange(1, count + 1)


def pr_curve(
    cluster_fn: Callable[[float], np.ndarray],
    resolutions: Sequence[float],
    communities: Sequence[np.ndarray],
) -> List[PRPoint]:
    """Sweep ``cluster_fn`` over ``resolutions`` and score each clustering.

    ``cluster_fn(resolution)`` must return an assignment array.
    """
    points: List[PRPoint] = []
    for resolution in resolutions:
        assignments = np.asarray(cluster_fn(float(resolution)), dtype=np.int64)
        pr: PrecisionRecall = average_precision_recall(assignments, communities)
        points.append(
            PRPoint(
                resolution=float(resolution),
                precision=pr.precision,
                recall=pr.recall,
                num_clusters=int(assignments.max()) + 1 if assignments.size else 0,
            )
        )
    return points


def best_recall_at_precision(
    points: Sequence[PRPoint], min_precision: float
) -> float:
    """Max recall among points with precision >= ``min_precision``.

    The paper's headline quality claim has this form ("recall between
    0.61–0.98 for precision greater than 0.50").  Returns 0.0 when no
    point qualifies.
    """
    qualifying = [p.recall for p in points if p.precision >= min_precision]
    return max(qualifying) if qualifying else 0.0


def pr_dominates(
    ours: Sequence[PRPoint],
    theirs: Sequence[PRPoint],
    precision_grid: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
) -> float:
    """Fraction of precision thresholds where ``ours`` achieves at least the
    recall of ``theirs`` (1.0 = dominates everywhere on the grid)."""
    wins = 0
    for threshold in precision_grid:
        if best_recall_at_precision(ours, threshold) >= best_recall_at_precision(
            theirs, threshold
        ) - 1e-12:
            wins += 1
    return wins / len(tuple(precision_grid))
