"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``cluster``  — cluster a graph (edge-list file, named surrogate, or the
  karate club) with PAR-CC/SEQ-CC/PAR-MOD/SEQ-MOD and print the result
  summary; optionally write the labels to a file (one per line);
* ``generate`` — write a synthetic graph (rMAT / planted / surrogate) as
  an edge list, plus its ground-truth communities when available;
* ``evaluate`` — score a labels file against a communities file
  (precision/recall) and/or a labels file (ARI/NMI);
* ``sweep``    — sweep the resolution and print precision/recall per point
  (the Figure 9/10 methodology on your own data);
* ``hierarchy`` — print the multilevel coarsening hierarchy of one run;
* ``consensus`` — cluster several seeds and write the consensus labels;
* ``table1``   — print the surrogate dataset table;
* ``chaos``    — run the supervised chaos matrix (fault kind x site x
  engine x kernel) and assert the recovery invariants;
* ``doctor``   — health-check a finished run from its artifacts
  (registry record, trace, metrics, stats) against declarative health
  rules and serving SLOs; exit 1 on any crit finding;
* ``update`` / ``serve-sim`` — dynamic clustering (DESIGN.md §11);
* ``obs``      — timelines, the runs registry, and the self-contained
  HTML observability report (``obs report --html``).

Exit codes across the gate-like commands follow one convention:
0 = pass, 1 = gate failure (crit finding, regression, audit issue),
2 = usage or unreadable-input error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.api import cluster
from repro.core.options import RunOptions
from repro.errors import ConfigError, ReproError
from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.eval.ari import adjusted_rand_index
from repro.eval.ground_truth import average_precision_recall
from repro.eval.nmi import normalized_mutual_information
from repro.generators.planted import planted_partition_graph
from repro.generators.rmat import rmat_graph
from repro.generators.snap_like import SNAP_SURROGATES, load_snap_surrogate, surrogate_table
from repro.graphs.io import (
    read_communities,
    read_edge_list,
    read_labels,
    read_metis,
    write_communities,
    write_edge_list,
    write_labels,
)
from repro.graphs.karate import karate_club_graph


def _load_graph(args) -> "object":
    sources = [bool(args.input), bool(args.surrogate), args.karate]
    if sum(sources) != 1:
        raise SystemExit("choose exactly one of --input / --surrogate / --karate")
    if args.input:
        if str(args.input).endswith((".graph", ".metis")):
            return read_metis(args.input)
        return read_edge_list(
            args.input, on_malformed=getattr(args, "on_malformed", "strict")
        )
    if args.surrogate:
        return load_snap_surrogate(args.surrogate, seed=args.seed or 0).graph
    return karate_club_graph()


def _write_labels(labels: np.ndarray, path: str) -> None:
    with open(path, "w") as handle:
        for label in labels.tolist():
            handle.write(f"{label}\n")


def _read_labels(path: str) -> np.ndarray:
    with open(path) as handle:
        return np.asarray(
            [int(line.strip()) for line in handle if line.strip()], dtype=np.int64
        )


def _resilience_policy(args):
    """Build a ResiliencePolicy from the cluster subcommand's flags."""
    from repro.resilience import FaultPlan, ResiliencePolicy, RunBudget

    faults = None
    if args.inject is not None:
        faults = FaultPlan.from_spec(args.inject, seed=args.fault_seed)
    budget = None
    if any(
        value is not None
        for value in (args.time_budget, args.max_moves, args.max_rounds)
    ):
        budget = RunBudget(
            max_sim_seconds=args.time_budget,
            max_moves=args.max_moves,
            max_rounds=args.max_rounds,
        )
    wants_resilience = (
        faults is not None
        or budget is not None
        or args.audit
        or args.checkpoint
        or args.resume
    )
    if not wants_resilience:
        return None
    return ResiliencePolicy(
        faults=faults,
        budget=budget,
        audit=args.audit,
        strict=args.strict,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
    )


def _supervisor(args):
    """Build a RunSupervisor when any supervision flag is present."""
    wants_supervision = (
        args.supervise
        or args.max_attempts is not None
        or args.run_deadline is not None
        or args.level_deadline is not None
    )
    if not wants_supervision:
        return None
    from repro.supervisor import RetryPolicy, RunSupervisor, Watchdog

    retry = RetryPolicy(
        max_attempts_per_rung=(
            args.max_attempts if args.max_attempts is not None else 3
        )
    )
    watchdog = Watchdog(
        run_deadline_seconds=args.run_deadline,
        level_deadline_seconds=args.level_deadline,
    )
    return RunSupervisor(
        retry=retry, watchdog=watchdog, checkpoint_dir=args.checkpoint_dir
    )


def _instrumentation(args):
    """Build an Instrumentation when any observability flag is present."""
    profile = args.profile or bool(args.profile_json)
    if not (args.trace or args.metrics or profile):
        return None
    from repro.obs.instrument import Instrumentation

    return Instrumentation(profile=profile)


def _graph_name(args) -> str:
    """A short workload identifier for the run registry."""
    if args.input:
        return Path(args.input).name
    if args.surrogate:
        return f"surrogate:{args.surrogate}"
    return "karate"


def _round_quantiles(instr) -> List[tuple]:
    """(metric label, p50, p95) rows from the run's round histograms."""
    from repro.obs.instrument import M_FRONTIER, M_ROUND_GAIN

    rows = []
    for title, name in (
        ("round gain", M_ROUND_GAIN),
        ("frontier size", M_FRONTIER),
    ):
        metric = instr.metrics.get(name)
        if metric is None:
            continue
        for sample in metric.samples():
            labels = sample["labels"]
            engine = labels.get("engine", "?")
            rows.append(
                (
                    f"{title} [{engine}]",
                    metric.quantile(0.5, **labels),
                    metric.quantile(0.95, **labels),
                )
            )
    return rows


def _profile_payload(result, instr, top: int) -> dict:
    """The --profile content as a JSON-ready dict (for --profile-json)."""
    payload = {
        "levels": [
            {
                "level": idx,
                "vertices": lv.num_vertices,
                "rounds": lv.iterations + lv.refine_iterations,
                "moves": lv.moves + lv.refine_moves,
                "wall_seconds": lv.wall_seconds,
                "refine_wall_seconds": lv.refine_wall_seconds,
            }
            for idx, lv in enumerate(result.stats.levels)
        ],
        "top_regions": [
            {"label": label, "work": work, "share": share}
            for label, work, share in result.ledger.profile(top=top)
        ],
        "round_quantiles": [
            {"metric": name, "p50": p50, "p95": p95}
            for name, p50, p95 in _round_quantiles(instr)
        ],
        "stats": result.stats_dict(),
    }
    return payload


def _write_profile_json(result, instr, path, top: int) -> None:
    import json

    with open(path, "w") as handle:
        json.dump(_profile_payload(result, instr, top), handle, indent=2,
                  default=str)
        handle.write("\n")


def _print_profile(result, instr, top: int = 8) -> None:
    """--profile: per-level timings, top ledger regions, round quantiles."""
    print("per-level profile:")
    print(
        f"  {'level':>5} {'vertices':>9} {'rounds':>7} {'moves':>8} "
        f"{'wall_s':>9} {'refine_s':>9}"
    )
    for idx, lv in enumerate(result.stats.levels):
        print(
            f"  {idx:>5} {lv.num_vertices:>9} "
            f"{lv.iterations + lv.refine_iterations:>7} "
            f"{lv.moves + lv.refine_moves:>8} {lv.wall_seconds:>9.4f} "
            f"{lv.refine_wall_seconds:>9.4f}"
        )
    print(f"top {top} regions by simulated work:")
    for label, work, share in result.ledger.profile(top=top):
        print(f"  {label:<24} {work:>14.4g} {share:>6.1%}")
    quantiles = _round_quantiles(instr)
    if quantiles:
        print("round distributions (bucket-interpolated):")
        for name, p50, p95 in quantiles:
            print(f"  {name:<28} p50={p50:>12.6g} p95={p95:>12.6g}")


def _cmd_cluster(args) -> int:
    graph = _load_graph(args)
    config = ClusteringConfig.from_args(args)
    instr = _instrumentation(args)
    result = cluster(
        graph,
        config,
        RunOptions(
            resilience=_resilience_policy(args),
            instrumentation=instr,
            engine=args.engine,
            supervisor=_supervisor(args),
        ),
    )
    print(result.summary())
    for line in result.failure_log:
        print(f"  ! {line}", file=sys.stderr)
    if "supervisor" in result.extras:
        meta = result.extras["supervisor"]
        print(
            f"  supervised: rung={meta['rung']} attempts={meta['attempts']} "
            f"retries={meta['retries']} fallbacks={meta['fallbacks']} "
            f"watchdog_fires={meta['watchdog_fires']}"
            + (" SALVAGED" if meta["salvaged"] else ""),
            file=sys.stderr,
        )
    if "input_repairs" in result.extras:
        repairs = result.extras["input_repairs"]
        print(
            "  input repairs: "
            + " ".join(f"{k}={v}" for k, v in sorted(repairs.items())),
            file=sys.stderr,
        )
    if "fault_injections" in result.extras:
        tally = result.extras["fault_injections"]
        injected = " ".join(f"{k}={v}" for k, v in sorted(tally.items()))
        print(f"  faults injected: {injected or 'none'}", file=sys.stderr)
    if args.checkpoint and Path(args.checkpoint).exists():
        print(f"checkpoint written to {args.checkpoint}")
    if args.output:
        _write_labels(result.assignments, args.output)
        print(f"labels written to {args.output}")
    if args.output_labels:
        write_labels(result.assignments, args.output_labels)
        print(f"vertex/cluster labels written to {args.output_labels}")
    if instr is not None:
        if args.trace:
            instr.write_trace(args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            instr.write_metrics(args.metrics)
            print(f"metrics written to {args.metrics}")
        if args.profile:
            _print_profile(result, instr, top=args.profile_top)
        if args.profile_json:
            _write_profile_json(result, instr, args.profile_json,
                                top=args.profile_top)
            print(f"profile written to {args.profile_json}")
    if args.register:
        from repro.obs.registry import append_run, make_run_record

        run_id = args.run_id or f"run-{int(time.time())}"
        record = make_run_record(
            result, run_id=run_id, graph=_graph_name(args), engine=args.engine,
        )
        append_run(args.register, record)
        print(f"registered {run_id} in {args.register}")
    if args.doctor or args.health_rules:
        from repro.obs.doctor import DoctorInputs, cluster_decomposition

        decomposition = None
        if config.objective is Objective.CORRELATION:
            # The per-cluster split is only exact for the λ-objective;
            # modularity runs rescore a degree-reweighted graph.
            decomposition = cluster_decomposition(
                graph, result.assignments, float(result.resolution)
            )
        record = history = None
        if args.register:
            from repro.obs.registry import load_runs

            records = load_runs(args.register)
            if records:
                record = records[-1]
                history = _registry_history(records, record)
        inputs = DoctorInputs(
            stats=result.stats_dict(),
            trace=list(instr.tracer.records) if instr is not None else None,
            metric_samples=instr.metrics.collect() if instr is not None else None,
            record=record,
            history=history,
            decomposition=decomposition,
            iteration_cap=None if args.converge else args.num_iter,
        )
        args.doctor_source = _graph_name(args)
        return _doctor_verdict(args, inputs, rules_path=args.health_rules)
    return 0


def _dynamic_config(args) -> ClusteringConfig:
    """The correlation-only config shared by ``update`` and ``serve-sim``.

    Must be flag-compatible with the ``cluster`` subcommand so a snapshot
    written after ``repro cluster --output-labels`` + ``repro update``
    restores under the same ``config_tag``.  Both directions now ride the
    :meth:`ClusteringConfig.add_args`/:meth:`~ClusteringConfig.from_args`
    round-trip, so compatibility is structural.
    """
    return ClusteringConfig.from_args(args, objective=Objective.CORRELATION)


def _dynamic_guard(args):
    from repro.dynamic import DriftGuard

    return DriftGuard(
        max_drift=args.guard_drift,
        recompute_every=args.guard_every,
        max_frontier_fraction=args.guard_frontier,
    )


def _load_dynamic(args, config, store):
    """Build the DynamicClusterer from a snapshot, labels, or bootstrap."""
    from repro.dynamic import DynamicClusterer, load_snapshot

    guard = _dynamic_guard(args)
    instr = _instrumentation(args)
    if args.snapshot:
        return load_snapshot(
            args.snapshot, config, engine=args.engine, guard=guard,
            instrumentation=instr,
        )
    has_source = bool(args.input) or bool(args.surrogate) or args.karate
    if has_source:
        graph = _load_graph(args)
        if args.labels:
            assignments = read_labels(args.labels, num_vertices=graph.num_vertices)
            return DynamicClusterer(
                graph, assignments, config, engine=args.engine, guard=guard,
                instrumentation=instr,
            )
        print("bootstrapping: clustering the input graph first", file=sys.stderr)
        return DynamicClusterer.bootstrap(
            graph, config, engine=args.engine, guard=guard, instrumentation=instr,
        )
    if store is not None and store.latest() is not None:
        return store.load(
            config, engine=args.engine, guard=guard, instrumentation=instr,
        )
    raise SystemExit(
        "choose a state source: --snapshot FILE, a graph source "
        "(--input/--surrogate/--karate, optionally with --labels), or a "
        "--snapshot-dir holding a previous save"
    )


def _dynamic_graph_name(args) -> str:
    if args.snapshot:
        return f"snapshot:{Path(args.snapshot).name}"
    if args.input or args.surrogate or args.karate:
        return _graph_name(args)
    return f"snapshot-dir:{Path(args.snapshot_dir).name}"


def _cmd_update(args) -> int:
    from repro.dynamic import (
        ClusterServer,
        SnapshotStore,
        batched,
        read_update_log,
        save_snapshot,
    )

    config = _dynamic_config(args)
    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    clusterer = _load_dynamic(args, config, store)
    # Batches route through the serving facade so instrumented sessions
    # populate the per-op SLO latency histograms (commit/save).
    server = ClusterServer(clusterer, store)
    updates = read_update_log(args.updates)
    batch_size = args.batch_size if args.batch_size else max(len(updates), 1)
    start = time.perf_counter()
    for batch in batched(updates, batch_size):
        report = server.apply(batch)
        counts = " ".join(
            f"{op}={k}" for op, k in report.op_counts.items() if k
        )
        line = (
            f"batch {report.batch_index}: updates={report.num_updates} "
            f"({counts}) seed={report.seed_size} rounds={report.iterations} "
            f"moves={report.moves} evals={report.candidate_evaluations} "
            f"f={report.f_objective:.9g}"
        )
        if report.drift is not None:
            line += f" drift={report.drift:.3g}"
        if report.escalated:
            line += f" ESCALATED={report.escalated}"
        print(line)
    wall = time.perf_counter() - start
    stats = clusterer.stats()
    print(
        f"final: n={stats['num_vertices']} m={stats['num_edges']} "
        f"clusters={stats['num_clusters']} f={stats['f_objective']:.9g} "
        f"batches={stats['batches_applied']} moves={stats['moves_applied']} "
        f"escalations={stats['escalations']}"
    )
    if args.audit:
        issues = clusterer.audit()
        if issues:
            for issue in issues:
                print(f"  ! audit: {issue}", file=sys.stderr)
            server.close()
            return 1
        print("audit: clean")
    if args.output_labels:
        write_labels(clusterer.state.assignments, args.output_labels)
        print(f"vertex/cluster labels written to {args.output_labels}")
    if store is not None:
        slot = server.save()
        print(f"snapshot rotated into {slot}")
    if args.save_snapshot:
        save_snapshot(args.save_snapshot, clusterer)
        print(f"snapshot written to {args.save_snapshot}")
    # All batches are applied: release the warm worker pool (no-op for
    # the simulated backend) before reporting/registration.
    server.close()
    if clusterer.instr.enabled:
        if args.trace:
            clusterer.instr.write_trace(args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            clusterer.instr.write_metrics(args.metrics)
            print(f"metrics written to {args.metrics}")
    if args.register:
        from repro.core.objective import modularity
        from repro.obs.registry import append_run, make_record

        try:
            mod = modularity(clusterer.graph, clusterer.state.assignments)
        except (ValueError, ReproError):
            mod = 0.0
        run_id = args.run_id or f"update-{int(time.time())}"
        record = make_record(
            run_id,
            workload={
                "graph": _dynamic_graph_name(args),
                "engine": clusterer.engine_name,
                "objective": "correlation",
                "resolution": float(clusterer.resolution),
                "seed": config.seed,
                "workers": int(config.resolved_workers),
                "kernel": config.kernel,
                "update_batch": {
                    "batches": stats["batches_applied"],
                    "updates": stats["updates_applied"],
                    "batch_size": batch_size,
                    "escalations": stats["escalations"],
                },
            },
            metrics={
                "wall_seconds": wall,
                "sim_time_seconds": stats["sim_seconds"],
                "f_objective": stats["f_objective"],
                "modularity": float(mod),
            },
            info={
                "num_clusters": stats["num_clusters"],
                "moves": stats["moves_applied"],
            },
        )
        append_run(args.register, record)
        print(f"registered {run_id} in {args.register}")
    if args.doctor or args.slo:
        from repro.obs.doctor import DoctorInputs
        from repro.obs.health import load_slo

        record = history = None
        if args.register:
            from repro.obs.registry import load_runs

            records = load_runs(args.register)
            if records:
                record = records[-1]
                history = _registry_history(records, record)
        instr = clusterer.instr
        inputs = DoctorInputs(
            trace=list(instr.tracer.records) if instr.enabled else None,
            metric_samples=instr.metrics.collect() if instr.enabled else None,
            record=record,
            history=history,
            # Re-read: the post-save staleness reset must reach the facts.
            dynamic_stats=clusterer.stats(),
            slo=load_slo(args.slo) if args.slo else None,
        )
        args.doctor_source = _dynamic_graph_name(args)
        return _doctor_verdict(args, inputs)
    return 0


def _cmd_serve_sim(args) -> int:
    from repro.dynamic import SnapshotStore, run_session

    config = _dynamic_config(args)
    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    clusterer = _load_dynamic(args, config, store)
    try:
        with open(args.script) as handle:
            script = handle.readlines()
        for line in run_session(clusterer, script, store=store):
            print(line)
    finally:
        clusterer.close()
    return 0


def _cmd_serve(args) -> int:
    """Drive the concurrent serving gateway with a generated workload."""
    from repro.dynamic import SnapshotStore
    from repro.serving import (
        GatewayPolicy,
        ServingGateway,
        SimulatedDriver,
        ThreadedDriver,
        WorkloadSpec,
        replay_digests,
    )

    config = _dynamic_config(args)
    store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir else None
    clusterer = _load_dynamic(args, config, store)
    # Bootstrap state, captured before any commit: the serial-replay
    # equivalence check re-applies the committed batches from here.
    graph0 = clusterer.graph
    labels0 = clusterer.state.assignments.copy()
    policy = GatewayPolicy(
        read_queue_limit=args.read_queue_limit,
        write_queue_limit=args.write_queue_limit,
        max_batch_updates=args.max_batch_updates,
        retry_after_seconds=args.retry_after,
        commit_interval_seconds=args.commit_interval,
        read_concurrency=args.read_concurrency,
    )
    workload = WorkloadSpec(
        num_requests=args.requests,
        read_fraction=args.read_fraction,
        arrival=args.arrival,
        rate=args.rate,
        clients=args.clients,
        think_seconds=args.think,
        read_deadline_seconds=args.read_deadline,
        seed=args.workload_seed,
    )
    requests = workload.generate(graph0.num_vertices)
    instr = clusterer.instr if clusterer.instr.enabled else None
    gateway = ServingGateway(clusterer, policy, instrumentation=instr)
    try:
        if args.driver == "sim":
            driver = SimulatedDriver(serial_baseline=args.serial_baseline)
        else:
            driver = ThreadedDriver(
                num_threads=args.threads, time_scale=args.time_scale
            )
        result = driver.run(gateway, requests)
    finally:
        clusterer.close()
    summary = result.summary()
    counts = summary["counts"]
    print(
        f"driver={summary['driver']} requests={summary['num_requests']} "
        f"makespan={summary['makespan_seconds']:.4f}s "
        f"epochs={gateway.epoch.index} commits={len(gateway.committed)}"
    )
    for klass in ("read", "write"):
        row = counts[klass]
        print(
            f"  {klass:<5} ok={row['ok']} shed={row['shed']} "
            f"expired={row['expired']} rejected={row['rejected']}"
        )
    if summary["read_p95_seconds"] is not None:
        print(
            f"  read p50={summary['read_p50_seconds']:.6f}s "
            f"p95={summary['read_p95_seconds']:.6f}s "
            f"throughput={summary['read_throughput_rps']:.1f} req/s"
        )
    exit_code = 0
    issues = result.check_accounting(gateway)
    if issues:
        for issue in issues:
            print(f"  ! accounting: {issue}", file=sys.stderr)
        exit_code = 1
    else:
        print("accounting: every request resolved (no silent drops)")
    if args.verify_replay:
        replayed = replay_digests(
            graph0,
            labels0,
            config,
            gateway.committed_batches(),
            engine=clusterer.engine_name,
            guard=_dynamic_guard(args),
        )
        if replayed == gateway.epoch_log:
            print(
                f"replay: {len(gateway.epoch_log)} epoch digests "
                "bit-identical to serial re-application"
            )
        else:
            print("  ! replay: committed epochs DIVERGE from serial replay",
                  file=sys.stderr)
            exit_code = 1
    if instr is not None:
        if args.trace:
            clusterer.instr.write_trace(args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            clusterer.instr.write_metrics(args.metrics)
            print(f"metrics written to {args.metrics}")
    if args.doctor or args.slo:
        from repro.obs.doctor import DoctorInputs
        from repro.obs.health import load_slo

        inputs = DoctorInputs(
            trace=list(clusterer.instr.tracer.records) if instr else None,
            metric_samples=clusterer.instr.metrics.collect() if instr else None,
            dynamic_stats=clusterer.stats(),
            gateway_stats=gateway.stats(),
            slo=load_slo(args.slo) if args.slo else None,
        )
        args.doctor_source = _dynamic_graph_name(args)
        doctor_code = _doctor_verdict(args, inputs)
        exit_code = max(exit_code, doctor_code)
    return exit_code


def _cmd_generate(args) -> int:
    if args.kind == "rmat":
        graph = rmat_graph(args.scale, args.edges or 5 * 2**args.scale, seed=args.seed)
        write_edge_list(graph, args.output)
        print(f"rmat: n={graph.num_vertices} m={graph.num_edges} -> {args.output}")
        return 0
    if args.kind == "planted":
        part = planted_partition_graph(
            num_vertices=args.vertices,
            intra_degree=args.intra_degree,
            inter_degree=args.inter_degree,
            seed=args.seed,
        )
    elif args.kind == "lfr":
        from repro.generators.lfr import lfr_like_graph

        part = lfr_like_graph(
            num_vertices=args.vertices, mixing=args.mixing, seed=args.seed
        )
    elif args.kind == "surrogate":
        if not args.name:
            raise SystemExit("--name required for --kind surrogate")
        part = load_snap_surrogate(args.name, seed=args.seed or 0)
    else:
        raise SystemExit(f"unknown kind {args.kind}")
    write_edge_list(part.graph, args.output)
    print(
        f"{part.name}: n={part.graph.num_vertices} m={part.graph.num_edges} "
        f"-> {args.output}"
    )
    if args.communities:
        write_communities(part.communities, args.communities)
        print(f"{part.num_communities} communities -> {args.communities}")
    return 0


def _cmd_evaluate(args) -> int:
    labels = _read_labels(args.labels)
    if args.communities:
        communities = read_communities(args.communities)
        pr = average_precision_recall(labels, communities)
        print(f"precision={pr.precision:.4f} recall={pr.recall:.4f} f1={pr.f1:.4f}")
    if args.reference:
        reference = _read_labels(args.reference)
        if reference.size != labels.size:
            raise SystemExit(
                f"label files disagree in length: {labels.size} vs {reference.size}"
            )
        print(f"ARI={adjusted_rand_index(labels, reference):.4f}")
        print(f"NMI={normalized_mutual_information(labels, reference):.4f}")
    if not args.communities and not args.reference:
        raise SystemExit("provide --communities and/or --reference")
    return 0


def _cmd_table1(_args) -> int:
    print(f"{'graph':<14}{'vertices':>10}{'edges':>12}")
    for name, n, m in surrogate_table(seed=0):
        print(f"{name:<14}{n:>10}{m:>12}")
    return 0


def _cmd_report(args) -> int:
    from repro.eval.conductance import conductance_summary
    from repro.eval.report import cluster_report

    graph = _load_graph(args)
    labels = _read_labels(args.labels)
    if labels.size != graph.num_vertices:
        raise SystemExit(
            f"labels file has {labels.size} entries for a graph of "
            f"{graph.num_vertices} vertices"
        )
    communities = read_communities(args.communities) if args.communities else None
    report = cluster_report(
        graph, labels, resolution=args.resolution, communities=communities
    )
    conductance = conductance_summary(graph, labels)
    print(f"clusters:            {report.num_clusters}")
    print(f"max cluster size:    {report.max_cluster_size}")
    print(f"mean cluster size:   {report.mean_cluster_size:.2f}")
    print(f"singleton fraction:  {report.singleton_fraction:.3f}")
    print(f"intra-edge fraction: {report.intra_edge_fraction:.3f}")
    print(f"CC objective:        {report.cc_objective:.6g}")
    print(f"modularity:          {report.modularity:.4f}")
    print(f"mean conductance:    {conductance['mean']:.4f}")
    if report.precision is not None:
        print(f"precision:           {report.precision:.4f}")
        print(f"recall:              {report.recall:.4f}")
        print(f"f1:                  {report.f1:.4f}")
    return 0


def _cmd_sweep(args) -> int:
    graph = _load_graph(args)
    communities = read_communities(args.communities) if args.communities else None
    resolutions = [float(tok) for tok in args.resolutions.split(",")]
    header = f"{'resolution':>10} {'clusters':>9} {'objective':>12}"
    if communities:
        header += f" {'precision':>10} {'recall':>8} {'f1':>8}"
    print(header)
    for resolution in resolutions:
        config = ClusteringConfig(
            objective=Objective(args.objective),
            resolution=resolution,
            seed=args.seed,
        )
        result = cluster(graph, config)
        line = (
            f"{resolution:>10g} {result.num_clusters:>9} "
            f"{result.objective:>12.4g}"
        )
        if communities:
            pr = average_precision_recall(result.assignments, communities)
            line += f" {pr.precision:>10.4f} {pr.recall:>8.4f} {pr.f1:>8.4f}"
        print(line)
    return 0


def _cmd_hierarchy(args) -> int:
    from repro.core.hierarchy import cluster_hierarchy

    graph = _load_graph(args)
    config = ClusteringConfig(
        objective=Objective(args.objective),
        resolution=args.resolution,
        seed=args.seed,
    )
    hierarchy = cluster_hierarchy(graph, config)
    print(f"{'level':>5} {'clusters':>9} {'objective':>12}")
    for level in hierarchy.levels:
        print(
            f"{level.level:>5} {level.num_clusters:>9} {level.objective:>12.4g}"
        )
    print(f"nested: {hierarchy.is_nested()}")
    return 0


def _cmd_consensus(args) -> int:
    from repro.eval.consensus import consensus_from_runs

    graph = _load_graph(args)

    def run(seed: int) -> np.ndarray:
        config = ClusteringConfig(
            objective=Objective(args.objective),
            resolution=args.resolution,
            seed=seed,
        )
        return cluster(graph, config).assignments

    labels = consensus_from_runs(
        graph, run, num_runs=args.runs, threshold=args.threshold
    )
    print(f"consensus over {args.runs} runs: {int(labels.max()) + 1} clusters")
    if args.output:
        _write_labels(labels, args.output)
        print(f"labels written to {args.output}")
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.resilience.chaos import chaos_matrix
    from repro.resilience.faults import FaultKind

    graph = _load_graph(args)
    config = ClusteringConfig(
        resolution=args.resolution,
        num_workers=args.workers,
        num_iter=args.num_iter,
    )
    kinds = None
    if args.kinds:
        kinds = []
        for token in args.kinds.split(","):
            try:
                kinds.append(FaultKind(token.strip()))
            except ValueError:
                raise ConfigError(
                    f"unknown fault kind {token.strip()!r}; "
                    f"available: {sorted(k.value for k in FaultKind)}"
                ) from None
    engines = args.engines.split(",") if args.engines else None
    kernels = args.kernels.split(",") if args.kernels else None
    backends = args.backends.split(",") if args.backends else None
    report = chaos_matrix(
        graph,
        config,
        engines=engines,
        kernels=kernels,
        backends=backends,
        kinds=kinds,
        rate=args.rate,
        max_injections=args.max_injections,
        seed=args.seed,
        tolerance=args.tolerance,
        check_replay=not args.no_replay,
    )
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def _load_metric_samples(path) -> List[dict]:
    """Exported metric samples from a --metrics file (JSONL or Prometheus)."""
    from repro.obs.metrics import MetricsRegistry, samples_from_prometheus

    text = Path(path).read_text()
    if str(path).endswith((".json", ".jsonl")):
        return MetricsRegistry.parse_jsonl(text)
    return samples_from_prometheus(text)


def _load_stats_payload(path) -> dict:
    """A stats dict from a JSON file (raw stats_dict or --profile-json)."""
    import json

    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: stats file must hold a JSON object")
    if isinstance(payload.get("stats"), dict):
        return payload["stats"]  # a --profile-json payload
    return payload


def _registry_history(records, record) -> List[dict]:
    """Records before ``record`` with the same workload (trend baselines)."""
    history = []
    for other in records:
        if other is record:
            break
        if other.get("workload") == record.get("workload"):
            history.append(other)
    return history


def _doctor_verdict(args, inputs, rules_path=None, json_path=None) -> int:
    """Shared tail of every doctor surface: diagnose, print, gate."""
    from repro.obs.doctor import diagnose
    from repro.obs.health import load_rules

    rules = load_rules(rules_path) if rules_path else None
    doctor = diagnose(inputs, rules=rules)
    print(doctor.report.describe())
    if doctor.slo_rows:
        print("serving SLOs (p95 vs target):")
        for row in doctor.slo_rows:
            print(
                f"  {row['op']:<8} ops={row['count']:<6} "
                f"p50={row['p50']:.6g}s p95={row['p95']:.6g}s "
                f"target={row['target']:g}s [{row['severity']}]"
            )
    if json_path:
        import json

        with open(json_path, "w") as handle:
            json.dump(doctor.as_dict(), handle, indent=2, default=str)
            handle.write("\n")
        print(f"doctor verdict written to {json_path}")
    html = getattr(args, "html", None)
    if html:
        from repro.obs.report import write_report

        write_report(html, doctor, source=getattr(args, "doctor_source", ""))
        print(f"report written to {html}")
    return doctor.report.exit_code


def _cmd_doctor(args) -> int:
    from repro.obs.doctor import DoctorInputs, load_trace
    from repro.obs.health import load_slo
    from repro.obs.registry import RunRegistryError, find_run, load_runs

    record = None
    history: Optional[List[dict]] = None
    try:
        if args.run_id or args.last:
            if not args.runs:
                print(
                    "error: a run id (or --last) needs --runs REGISTRY",
                    file=sys.stderr,
                )
                return 2
            records = load_runs(args.runs)
            if args.last:
                if not records:
                    print(f"error: {args.runs} is empty", file=sys.stderr)
                    return 2
                record = records[-1]
            else:
                record = find_run(records, args.run_id)
            history = _registry_history(records, record)
        stats = _load_stats_payload(args.stats) if args.stats else None
        trace = load_trace(args.trace) if args.trace else None
        samples = _load_metric_samples(args.metrics) if args.metrics else None
        slo = load_slo(args.slo) if args.slo else None
    except (OSError, ValueError, RunRegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if record is None and stats is None and trace is None and samples is None:
        print(
            "error: nothing to diagnose — give a run id with --runs, or "
            "--stats/--trace/--metrics artifact files",
            file=sys.stderr,
        )
        return 2
    inputs = DoctorInputs(
        stats=stats,
        trace=trace,
        metric_samples=samples,
        record=record,
        history=history,
        iteration_cap=args.iteration_cap,
        slo=slo,
    )
    args.doctor_source = args.run_id or args.trace or args.metrics or args.stats or ""
    return _doctor_verdict(
        args, inputs, rules_path=args.rules, json_path=args.json
    )


def _cmd_obs_timeline(args) -> int:
    from repro.obs.schema import TraceSchemaError
    from repro.obs.timeline import write_chrome_trace

    out = args.out or str(Path(args.trace).with_suffix(".chrome.json"))
    try:
        document = write_chrome_trace(args.trace, out)
    except TraceSchemaError as exc:
        for problem in exc.problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 2
    events = document["traceEvents"]
    lanes = {e["tid"] for e in events if e.get("pid") == 1 and e["ph"] == "X"}
    spans = sum(1 for e in events if e.get("pid") == 0 and e["ph"] == "X")
    print(
        f"timeline written to {out} ({spans} spans, "
        f"{len(lanes)} worker lanes)"
    )
    return 0


def _cmd_obs_report(args) -> int:
    from repro.obs.registry import RunRegistryError, load_runs

    if args.runs is None and not args.html:
        print(
            "error: give a runs.jsonl registry, or --html OUT with "
            "--trace/--metrics/--stats artifacts",
            file=sys.stderr,
        )
        return 2
    try:
        records = load_runs(args.runs) if args.runs else []
    except (OSError, RunRegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.html:
        from repro.obs.doctor import DoctorInputs, diagnose, load_trace
        from repro.obs.report import write_report

        try:
            stats = _load_stats_payload(args.stats) if args.stats else None
            trace = load_trace(args.trace) if args.trace else None
            samples = (
                _load_metric_samples(args.metrics) if args.metrics else None
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not (records or stats or trace or samples):
            print(
                "error: nothing to report — give a registry and/or "
                "--trace/--metrics/--stats artifacts",
                file=sys.stderr,
            )
            return 2
        record = records[-1] if records else None
        history = _registry_history(records, record) if record else None
        doctor = diagnose(
            DoctorInputs(
                stats=stats,
                trace=trace,
                metric_samples=samples,
                record=record,
                history=history,
                iteration_cap=args.iteration_cap,
            )
        )
        source = args.trace or args.metrics or args.stats or args.runs or ""
        write_report(args.html, doctor, source=source, runs=records or None)
        print(f"report written to {args.html}")
        return 0
    if args.last is not None:
        records = records[-args.last:]
    print(
        f"{'run_id':<18} {'graph':<18} {'engine':<10} {'res':>6} "
        f"{'wall_s':>8} {'sim_s':>10} {'objective':>12} {'modularity':>10}"
    )
    for record in records:
        workload = record["workload"]
        metrics = record["metrics"]
        degraded = " DEGRADED" if record.get("info", {}).get("degraded") else ""
        print(
            f"{record['run_id']:<18} {workload['graph']:<18} "
            f"{workload['engine']:<10} {workload['resolution']:>6g} "
            f"{metrics['wall_seconds']:>8.3f} "
            f"{metrics['sim_time_seconds']:>10.4g} "
            f"{metrics['f_objective']:>12.6g} "
            f"{metrics['modularity']:>10.4f}{degraded}"
        )
    return 0


def _cmd_obs_diff(args) -> int:
    from repro.obs.registry import (
        OBJECTIVE_TOLERANCE,
        WALL_TOLERANCE,
        RunRegistryError,
        diff_runs,
        find_run,
        load_runs,
    )

    try:
        records = load_runs(args.runs)
        baseline = find_run(records, args.baseline)
        current = find_run(records, args.current)
    except (OSError, RunRegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_runs(
        baseline,
        current,
        wall_tolerance=(
            WALL_TOLERANCE if args.wall_tolerance is None
            else args.wall_tolerance
        ),
        objective_tolerance=(
            OBJECTIVE_TOLERANCE if args.objective_tolerance is None
            else args.objective_tolerance
        ),
    )
    print(f"diff {args.baseline} -> {args.current}")
    print(report.describe())
    if report.compared == 0:
        # Nothing was actually gated — treat a vacuous diff as a failure
        # rather than a silent pass (exit codes: 0 pass, 1 gate failure,
        # 2 usage/data error).
        print("error: no metrics were comparable", file=sys.stderr)
        return 1
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel correlation clustering (VLDB 2021) reproduction CLI",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="re-raise repro errors with a full traceback instead of a "
             "one-line message",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cluster", help="cluster a graph")
    p.add_argument("--input", help="edge-list file (u v [w] per line)")
    p.add_argument(
        "--surrogate", choices=sorted(SNAP_SURROGATES), help="named surrogate graph"
    )
    p.add_argument("--karate", action="store_true", help="use the karate club graph")
    ClusteringConfig.add_args(p)
    p.add_argument("--output", help="write labels (one per line)")
    p.add_argument("--output-labels", metavar="PATH",
                   help="write 'vertex<TAB>cluster' lines (round-trips "
                        "into 'repro update --labels' without pickles)")
    p.add_argument("--on-malformed", choices=["strict", "repair"],
                   default="strict",
                   help="edge-list inputs: reject defects (strict) or drop "
                        "self-loops / merge duplicate edges and report the "
                        "counts (repair); NaN/inf weights always reject")
    r = p.add_argument_group("resilience")
    r.add_argument("--audit", action="store_true",
                   help="audit state invariants at level boundaries and "
                        "on the final result")
    r.add_argument("--strict", action="store_true",
                   help="raise typed errors instead of degrading gracefully")
    r.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                   help="cap on simulated seconds; on exhaustion return the "
                        "best-so-far clustering flagged degraded")
    r.add_argument("--max-moves", type=int, default=None,
                   help="cap on total vertex moves")
    r.add_argument("--max-rounds", type=int, default=None,
                   help="cap on total best-move rounds")
    r.add_argument("--checkpoint", metavar="PATH",
                   help="write a resumable .npz checkpoint at level boundaries")
    r.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="checkpoint every N levels (default 1)")
    r.add_argument("--resume", metavar="PATH",
                   help="resume bit-identically from a checkpoint file")
    r.add_argument("--inject", metavar="SPEC",
                   help="inject concurrency faults, e.g. "
                        "'stale-read=0.2,cas-fail=0.1,drop-move' "
                        "(bare kind = default rate)")
    r.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault-injection schedule")
    s = p.add_argument_group("supervision")
    s.add_argument("--supervise", action="store_true",
                   help="run under the self-healing supervisor: retry with "
                        "resume-from-checkpoint, then descend the fallback "
                        "ladder (reference kernel, sequential engine, "
                        "graceful), salvaging best-so-far as a last resort")
    s.add_argument("--max-attempts", type=int, default=None, metavar="N",
                   help="supervisor attempts per ladder rung (default 3; "
                        "implies --supervise)")
    s.add_argument("--run-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="watchdog deadline for the whole supervised run "
                        "(implies --supervise)")
    s.add_argument("--level-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="watchdog deadline per engine invocation "
                        "(implies --supervise)")
    s.add_argument("--checkpoint-dir", metavar="DIR",
                   help="directory for the supervisor's rotating "
                        "checkpoint slots (default: a temp dir)")
    o = p.add_argument_group("observability")
    o.add_argument("--engine", choices=["relaxed", "prefix", "colored",
                                        "event", "sequential"],
                   help="override the BEST-MOVES engine (default: relaxed "
                        "for PAR, sequential for SEQ)")
    o.add_argument("--trace", metavar="FILE",
                   help="write the run's nested span trace as JSONL "
                        "(run -> level -> phase -> round)")
    o.add_argument("--metrics", metavar="FILE",
                   help="write run metrics; .json/.jsonl gets JSONL, "
                        "anything else Prometheus text format")
    o.add_argument("--profile", action="store_true",
                   help="print a per-level timing table, the top "
                        "simulated-work regions, and p50/p95 round "
                        "distributions")
    o.add_argument("--profile-top", type=int, default=8, metavar="N",
                   help="how many ledger regions --profile shows "
                        "(default 8)")
    o.add_argument("--profile-json", metavar="FILE",
                   help="write the profile as JSON (implies collecting "
                        "profile data even without --profile)")
    o.add_argument("--register", metavar="RUNS_JSONL",
                   help="append this run's metrics to the runs registry "
                        "(see 'repro obs diff')")
    o.add_argument("--run-id", metavar="ID",
                   help="registry id for --register (default: run-<time>)")
    o.add_argument("--doctor", action="store_true",
                   help="run the health-rule doctor on this run's "
                        "artifacts after clustering; exit 1 on any crit "
                        "finding (see 'repro doctor')")
    o.add_argument("--health-rules", metavar="FILE",
                   help="health rules JSON for --doctor (default: the "
                        "built-in ruleset; implies --doctor)")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("--kind", choices=["rmat", "planted", "lfr", "surrogate"],
                   required=True)
    p.add_argument("--output", required=True, help="edge-list output path")
    p.add_argument("--communities", help="ground-truth communities output path")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=int, default=10, help="rmat: log2(num vertices)")
    p.add_argument("--edges", type=int, help="rmat: number of edges")
    p.add_argument("--vertices", type=int, default=1000, help="planted: vertex count")
    p.add_argument("--intra-degree", type=float, default=8.0)
    p.add_argument("--mixing", type=float, default=0.2, help="lfr: mu")
    p.add_argument("--inter-degree", type=float, default=2.0)
    p.add_argument("--name", help="surrogate: graph name")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("evaluate", help="score a clustering")
    p.add_argument("--labels", required=True, help="labels file (one per line)")
    p.add_argument("--communities", help="SNAP-format ground-truth communities")
    p.add_argument("--reference", help="reference labels file (ARI/NMI)")
    p.set_defaults(func=_cmd_evaluate)

    def add_graph_source(p):
        p.add_argument("--input", help="edge-list file (u v [w] per line)")
        p.add_argument(
            "--surrogate", choices=sorted(SNAP_SURROGATES),
            help="named surrogate graph",
        )
        p.add_argument("--karate", action="store_true",
                       help="use the karate club graph")
        p.add_argument(
            "--objective", choices=[o.value for o in Objective],
            default="correlation",
        )
        p.add_argument("--seed", type=int, default=None)

    p = sub.add_parser("sweep", help="precision/recall over a resolution sweep")
    add_graph_source(p)
    p.add_argument("--resolutions", default="0.01,0.05,0.1,0.3,0.5,0.8",
                   help="comma-separated resolutions")
    p.add_argument("--communities", help="ground-truth communities file")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("hierarchy", help="print the coarsening hierarchy")
    add_graph_source(p)
    p.add_argument("--resolution", type=float, default=0.05)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("consensus", help="consensus clustering over seeds")
    add_graph_source(p)
    p.add_argument("--resolution", type=float, default=0.05)
    p.add_argument("--runs", type=int, default=10,
                   help="number of seeds (the paper repeats 10x)")
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument("--output", help="write consensus labels")
    p.set_defaults(func=_cmd_consensus)

    p = sub.add_parser("report", help="quality report for a labels file")
    add_graph_source(p)
    p.add_argument("--labels", required=True, help="labels file (one per line)")
    p.add_argument("--resolution", type=float, default=0.01)
    p.add_argument("--communities", help="ground-truth communities file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("table1", help="print the surrogate dataset table")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "chaos",
        help="supervised chaos matrix: inject faults across engines and "
             "kernels, assert every cell recovers",
    )
    add_graph_source(p)
    p.add_argument("--resolution", type=float, default=0.01)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--num-iter", type=int, default=10)
    p.add_argument("--engines", metavar="LIST",
                   help="comma-separated engine names (default: all five)")
    p.add_argument("--kernels", metavar="LIST",
                   help="comma-separated kernel names (default: both)")
    p.add_argument("--backends", metavar="LIST",
                   help="comma-separated execution backends, e.g. "
                        "'simulated,process' (default: simulated only)")
    p.add_argument("--kinds", metavar="LIST",
                   help="comma-separated fault kinds (default: transient,"
                        "dup-move,cas-fail,delay-frontier)")
    p.add_argument("--rate", type=float, default=0.3,
                   help="per-draw injection probability (default 0.3)")
    p.add_argument("--max-injections", type=int, default=6,
                   help="cap on injections per cell, guaranteeing the "
                        "hazard eventually stops firing (default 6)")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="relative objective tolerance vs the fault-free "
                        "baseline (default 0.15)")
    p.add_argument("--no-replay", action="store_true",
                   help="skip the checkpoint replay bit-identity check")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON")
    p.set_defaults(func=_cmd_chaos, seed=1)

    def add_dynamic_flags(p):
        """State source + config flags shared by update/serve-sim."""
        p.add_argument("--snapshot", metavar="FILE",
                       help="restore live state from a snapshot .npz")
        p.add_argument("--snapshot-dir", metavar="DIR",
                       help="two-slot rotating SnapshotStore directory "
                            "(state source when no --snapshot/graph given; "
                            "always a save target)")
        p.add_argument("--input", help="edge-list file (u v [w] per line)")
        p.add_argument("--surrogate", choices=sorted(SNAP_SURROGATES),
                       help="named surrogate graph")
        p.add_argument("--karate", action="store_true",
                       help="use the karate club graph")
        p.add_argument("--labels", metavar="PATH",
                       help="start from a 'vertex<TAB>cluster' labels file "
                            "(as written by cluster --output-labels) "
                            "instead of re-clustering the graph source")
        p.add_argument("--on-malformed", choices=["strict", "repair"],
                       default="strict")
        ClusteringConfig.add_args(p, include_objective=False)
        p.add_argument("--engine", choices=["relaxed", "prefix", "colored",
                                            "event", "sequential"],
                       help="override the refinement engine (snapshots "
                            "default to the engine they were written with)")
        g = p.add_argument_group("drift guard")
        g.add_argument("--guard-every", type=int, default=16, metavar="N",
                       help="exact objective recompute every N batches "
                            "(0 disables; default 16)")
        g.add_argument("--guard-drift", type=float, default=1e-6,
                       metavar="EPS",
                       help="relative drift beyond which the guard "
                            "escalates to full re-clustering (default 1e-6)")
        g.add_argument("--guard-frontier", type=float, default=0.5,
                       metavar="FRAC",
                       help="escalate when one refinement round swept more "
                            "than this fraction of the graph (default 0.5)")

    p = sub.add_parser(
        "update",
        help="replay a JSONL edge-update log against a live clustering "
             "(localized refinement; see DESIGN.md §11)",
    )
    add_dynamic_flags(p)
    p.add_argument("--updates", required=True, metavar="JSONL",
                   help="update log: one {\"op\",\"u\",\"v\",\"weight\"} "
                        "object per line")
    p.add_argument("--batch-size", type=int, default=None, metavar="N",
                   help="apply updates in batches of N (default: one batch)")
    p.add_argument("--audit", action="store_true",
                   help="StateAuditor pass over the final state "
                        "(non-zero exit on issues)")
    p.add_argument("--output-labels", metavar="PATH",
                   help="write final 'vertex<TAB>cluster' labels")
    p.add_argument("--save-snapshot", metavar="FILE",
                   help="write the final state as a snapshot .npz")
    p.add_argument("--trace", metavar="FILE",
                   help="write the session's span trace (one 'update' span "
                        "per batch) as JSONL")
    p.add_argument("--metrics", metavar="FILE",
                   help="write repro_dynamic_* metrics; .json/.jsonl gets "
                        "JSONL, anything else Prometheus text")
    p.add_argument("--register", metavar="RUNS_JSONL",
                   help="append this session to the runs registry with "
                        "workload.update_batch tags")
    p.add_argument("--run-id", metavar="ID",
                   help="registry id for --register (default: update-<time>)")
    p.add_argument("--doctor", action="store_true",
                   help="run the doctor on the session: health rules plus "
                        "serving SLOs when instrumented; exit 1 on crit")
    p.add_argument("--slo", metavar="FILE",
                   help="serving SLO spec JSON for --doctor (default: "
                        "built-in targets; implies --doctor)")
    p.set_defaults(func=_cmd_update, profile=False, profile_json=None)

    p = sub.add_parser(
        "serve-sim",
        help="scripted query/update session against a live clustering "
             "(get/same/members/stats/insert/delete/reweight/commit/"
             "save/audit)",
    )
    add_dynamic_flags(p)
    p.add_argument("--script", required=True, metavar="FILE",
                   help="session script, one command per line")
    p.set_defaults(func=_cmd_serve_sim, profile=False, profile_json=None,
                   trace=None, metrics=None)

    p = sub.add_parser(
        "serve",
        help="drive the concurrent serving gateway: snapshot-isolated "
             "reads multiplexed against coalesced update commits, with "
             "admission control and load shedding (DESIGN.md §14)",
    )
    add_dynamic_flags(p)
    w = p.add_argument_group("workload")
    w.add_argument("--requests", type=int, default=500, metavar="N",
                   help="total requests to generate (default 500)")
    w.add_argument("--read-fraction", type=float, default=0.9,
                   metavar="FRAC",
                   help="fraction of requests that are reads (default 0.9)")
    w.add_argument("--arrival", choices=["open", "closed"], default="open",
                   help="open-loop Poisson arrivals at --rate, or "
                        "closed-loop clients pacing themselves")
    w.add_argument("--rate", type=float, default=2000.0, metavar="RPS",
                   help="open-loop offered load in requests/second")
    w.add_argument("--clients", type=int, default=8,
                   help="logical clients (closed-loop pacing + naming)")
    w.add_argument("--think", type=float, default=0.002, metavar="SECONDS",
                   help="closed-loop per-client think time")
    w.add_argument("--read-deadline", type=float, default=0.0,
                   metavar="SECONDS",
                   help="per-read deadline; queued reads past it are "
                        "dropped as expired (0 = none)")
    w.add_argument("--workload-seed", type=int, default=0,
                   help="workload generator seed (deterministic streams)")
    g = p.add_argument_group("gateway policy")
    g.add_argument("--read-queue-limit", type=int, default=256, metavar="N",
                   help="waiting reads beyond this are shed (default 256)")
    g.add_argument("--write-queue-limit", type=int, default=1024,
                   metavar="N",
                   help="staged writes beyond this are shed (default 1024)")
    g.add_argument("--max-batch-updates", type=int, default=0, metavar="N",
                   help="coalesced updates per commit; excess waits for "
                        "the next cycle (0 = unbounded)")
    g.add_argument("--commit-interval", type=float, default=0.1,
                   metavar="SECONDS",
                   help="seconds between commit cycles (default 0.1)")
    g.add_argument("--read-concurrency", type=int, default=4, metavar="N",
                   help="concurrent read servers in the simulated driver")
    g.add_argument("--retry-after", type=float, default=0.05,
                   metavar="SECONDS",
                   help="back-off hint attached to shed responses")
    d = p.add_argument_group("driver")
    d.add_argument("--driver", choices=["sim", "threads"], default="sim",
                   help="deterministic simulated clock (sim) or real "
                        "client threads (threads)")
    d.add_argument("--serial-baseline", action="store_true",
                   help="sim only: one lane shared by reads and commits "
                        "(the old ClusterServer discipline, for "
                        "comparison)")
    d.add_argument("--threads", type=int, default=4, metavar="N",
                   help="client threads for --driver threads")
    d.add_argument("--time-scale", type=float, default=0.0,
                   metavar="FACTOR",
                   help="threads: stretch the workload's virtual arrival "
                        "schedule by this factor (0 = submit at full "
                        "speed)")
    p.add_argument("--verify-replay", action="store_true",
                   help="re-apply the committed batches serially from the "
                        "bootstrap state and assert per-epoch label "
                        "digests are bit-identical (exit 1 on divergence)")
    p.add_argument("--trace", metavar="FILE",
                   help="write the session's span trace as JSONL")
    p.add_argument("--metrics", metavar="FILE",
                   help="write gateway + dynamic metrics; .json/.jsonl "
                        "gets JSONL, anything else Prometheus text")
    p.add_argument("--doctor", action="store_true",
                   help="run the doctor over the session: gateway facts, "
                        "health rules, serving SLOs; exit 1 on crit")
    p.add_argument("--slo", metavar="FILE",
                   help="serving SLO spec JSON for --doctor (implies "
                        "--doctor)")
    p.set_defaults(func=_cmd_serve, profile=False, profile_json=None)

    p = sub.add_parser(
        "doctor",
        help="health-check a run from its artifacts (registry record, "
             "trace JSONL, metrics export, stats JSON); exit 1 on any "
             "crit finding, 2 on unreadable inputs",
    )
    p.add_argument("run_id", nargs="?",
                   help="registered run id to diagnose (needs --runs)")
    p.add_argument("--runs", metavar="RUNS_JSONL",
                   help="runs registry: the record itself plus its "
                        "same-workload history for trend rules")
    p.add_argument("--last", action="store_true",
                   help="diagnose the most recent registered run")
    p.add_argument("--trace", metavar="FILE",
                   help="trace JSONL written by cluster/update --trace")
    p.add_argument("--metrics", metavar="FILE",
                   help="metrics export (.json/.jsonl or Prometheus text)")
    p.add_argument("--stats", metavar="FILE",
                   help="stats JSON (a raw stats dict or a --profile-json "
                        "payload)")
    p.add_argument("--rules", metavar="FILE",
                   help="health rules JSON (default: the built-in ruleset, "
                        "mirrored in benchmarks/health_rules.json)")
    p.add_argument("--slo", metavar="FILE",
                   help="serving SLO spec JSON (forces SLO evaluation "
                        "even without serving samples)")
    p.add_argument("--iteration-cap", type=int, default=None, metavar="N",
                   help="the run's --num-iter cap, enabling "
                        "capped/stalled-level detection from stats")
    p.add_argument("--json", metavar="FILE",
                   help="write the full verdict (findings + facts) as JSON")
    p.add_argument("--html", metavar="FILE",
                   help="also render the self-contained HTML report")
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "obs", help="observability: timelines and the runs registry"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser(
        "timeline",
        help="convert a trace JSONL to Chrome trace JSON (Perfetto)",
    )
    q.add_argument("trace", help="trace JSONL written by cluster --trace")
    q.add_argument("--out", metavar="FILE",
                   help="output path (default: <trace>.chrome.json)")
    q.set_defaults(func=_cmd_obs_timeline)

    q = obs_sub.add_parser(
        "report",
        help="print the registered runs, or render a self-contained "
             "HTML observability report with --html",
    )
    q.add_argument("runs", nargs="?", default=None,
                   help="runs.jsonl registry file (optional with --html)")
    q.add_argument("--last", type=int, default=None, metavar="N",
                   help="only the N most recent runs")
    q.add_argument("--html", metavar="FILE",
                   help="write a single-file HTML report (inline CSS/SVG, "
                        "no scripts) instead of the table")
    q.add_argument("--trace", metavar="FILE",
                   help="trace JSONL feeding the span waterfall and "
                        "convergence panels")
    q.add_argument("--metrics", metavar="FILE",
                   help="metrics export feeding metric facts and SLO rows")
    q.add_argument("--stats", metavar="FILE",
                   help="stats JSON (raw stats_dict or --profile-json)")
    q.add_argument("--iteration-cap", type=int, default=None, metavar="N",
                   help="the run's --num-iter cap for stall detection")
    q.set_defaults(func=_cmd_obs_report)

    q = obs_sub.add_parser(
        "diff",
        help="compare two registered runs; non-zero exit on regression",
    )
    q.add_argument("runs", help="runs.jsonl registry file")
    q.add_argument("baseline", help="run id to compare against")
    q.add_argument("current", help="run id under test")
    q.add_argument("--wall-tolerance", type=float, default=None,
                   help="relative wall/sim worsening that fails "
                        "(default 0.10)")
    q.add_argument("--objective-tolerance", type=float, default=None,
                   help="relative objective/modularity worsening that "
                        "fails (default 0.001)")
    q.set_defaults(func=_cmd_obs_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        if args.verbose:
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
