"""Shared utilities: seeded RNG handling, timing, validation helpers."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import WallTimer
from repro.utils.validation import (
    require,
    require_in_unit_interval,
    require_nonnegative,
    require_positive,
)

__all__ = [
    "WallTimer",
    "make_rng",
    "require",
    "require_in_unit_interval",
    "require_nonnegative",
    "require_positive",
    "spawn_rngs",
]
