"""Small argument-validation helpers used across the package.

These raise :class:`ValueError` (or a caller-supplied exception class) with
uniform messages, keeping validation one line at call sites.
"""

from __future__ import annotations

from typing import Type


def require(condition: bool, message: str, exc: Type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_nonnegative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in_unit_interval(value: float, name: str, open_ends: bool = True) -> None:
    """Require ``value`` in ``(0, 1)`` (or ``[0, 1]`` when ``open_ends=False``)."""
    if open_ends:
        ok = 0.0 < value < 1.0
        interval = "(0, 1)"
    else:
        ok = 0.0 <= value <= 1.0
        interval = "[0, 1]"
    if not ok:
        raise ValueError(f"{name} must lie in {interval}, got {value!r}")
