"""Wall-clock timing helpers.

The reproduction's performance claims are made in *simulated* time (see
:mod:`repro.parallel.scheduler`); wall-clock timing is still reported by the
benchmark harness for transparency about the Python process itself.
"""

from __future__ import annotations

import time
from typing import Optional


class WallTimer:
    """A tiny context-manager stopwatch.

    Example::

        with WallTimer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def running(self) -> float:
        """Elapsed seconds since entry, without stopping the timer."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start
