"""Seeded random-number-generator helpers.

Every stochastic component in the package (generators, asynchronous move
scheduling, pivot baselines) takes either an integer seed or an existing
:class:`numpy.random.Generator`.  These helpers normalize the two and derive
independent child generators so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged),
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the SeedSequence spawning protocol so children are independent of
    each other and of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: SeedLike, salt: int) -> int:
    """Derive a deterministic integer seed from ``seed`` and a ``salt``.

    Useful when a component needs a plain integer (e.g. to store in a result
    record) rather than a generator.
    """
    rng = make_rng(seed if not isinstance(seed, np.random.Generator) else seed)
    base = int(rng.integers(0, 2**31 - 1))
    return (base * 1_000_003 + salt) % (2**31 - 1)


def permutation(rng: Optional[np.random.Generator], n: int) -> np.ndarray:
    """Random permutation of ``range(n)``; identity when ``rng`` is None."""
    if rng is None:
        return np.arange(n, dtype=np.int64)
    return rng.permutation(n).astype(np.int64)
