"""The dict-accumulation reference kernel (the oracle).

This is the original per-vertex best-move computation: accumulate
``S(v, c')`` into a Python dict over ``v``'s neighbor clusters, then scan
the candidates with an exact-comparison, lowest-cluster-id tiebreak.  It
is deliberately simple — every other kernel is property-tested to match
it bit-for-bit — and it remains the fastest option for tiny batches,
where NumPy's per-call overhead exceeds the dict loop (which is why the
vectorized kernel falls back to it below a size cutoff).

:func:`accumulate_neighbor_weights` is the single shared accumulation
helper; ``all_move_gains`` (the debugging API in ``repro.core.moves``)
and the single/batch/sweep entry points here all go through it, so the
gain formula lives in exactly one place.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.kernels.base import GAIN_EPS, MoveKernel


def accumulate_neighbor_weights(graph, assignments: np.ndarray, v: int) -> dict:
    """``{cluster_id: S(v, cluster)}`` over the clusters of ``v``'s neighbors.

    Accumulation order is ``v``'s CSR adjacency order — the order every
    kernel must sum in for bit-identical floats.
    """
    lo = graph.offsets[v]
    hi = graph.offsets[v + 1]
    nbr_clusters = assignments[graph.neighbors[lo:hi]]
    wts = graph.weights[lo:hi]
    acc: dict = {}
    for c, w in zip(nbr_clusters.tolist(), wts.tolist()):
        acc[c] = acc.get(c, 0.0) + w
    return acc


def reference_single_move(
    graph,
    state,
    v: int,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
) -> Tuple[int, float]:
    """Best move for one vertex via dict accumulation.

    Semantically a batch of size one; ties break toward the smallest
    cluster id (exact float comparison), mirroring the vectorized
    kernel's segment argmax so the two kernels agree bit-for-bit.
    """
    assignments = state.assignments
    acc = accumulate_neighbor_weights(graph, assignments, v)
    current = int(assignments[v])
    k_v = float(graph.node_weights[v])
    cw = state.cluster_weights
    stay = acc.get(current, 0.0) - resolution * k_v * (float(cw[current]) - k_v)
    best_ext_gain = -math.inf
    best_ext_cluster = -1
    own_singleton = state.cluster_sizes[current] == 1
    for c, s in acc.items():
        if c == current:
            continue
        # Swap-avoidance under synchronous scheduling: see the vectorized
        # kernel / DESIGN.md §8.
        if (
            swap_avoidance
            and own_singleton
            and c > current
            and state.cluster_sizes[c] == 1
        ):
            continue
        gain = s - resolution * k_v * float(cw[c])
        if gain > best_ext_gain or (gain == best_ext_gain and c < best_ext_cluster):
            best_ext_gain = gain
            best_ext_cluster = c
    best_gain = stay
    best_cluster = current
    if best_ext_cluster >= 0 and best_ext_gain > stay + GAIN_EPS:
        best_gain = best_ext_gain
        best_cluster = best_ext_cluster
    if allow_escape and state.cluster_sizes[v] == 0 and best_gain < -GAIN_EPS:
        best_cluster = v
        best_gain = 0.0
    return best_cluster, best_gain - stay


def reference_batch_moves(
    graph,
    state,
    batch: np.ndarray,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
    instr=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch evaluation as a plain loop of single-vertex evaluations.

    Every vertex reads the same snapshot (``state`` is never mutated), so
    this is the semantic definition the vectorized batch kernel must
    reproduce bit-for-bit.
    """
    targets = np.empty(batch.size, dtype=np.int64)
    gains = np.empty(batch.size, dtype=np.float64)
    for i, v in enumerate(batch.tolist()):
        target, gain = reference_single_move(
            graph,
            state,
            v,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
        )
        targets[i] = target
        gains[i] = gain
    return targets, gains


def reference_sweep(
    graph,
    state,
    order: np.ndarray,
    resolution: float,
    allow_escape: bool = True,
    instr=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Vertex-at-a-time sweep with immediate moves (Algorithm 2's loop)."""
    movers: List[int] = []
    origins: List[int] = []
    targets: List[int] = []
    total_gain = 0.0
    for v in order.tolist():
        target, gain = reference_single_move(
            graph, state, v, resolution, allow_escape=allow_escape
        )
        if gain > 0.0:
            origins.append(int(state.assignments[v]))
            state.move_one(v, target)
            movers.append(v)
            targets.append(target)
            total_gain += gain
    return (
        np.asarray(movers, dtype=np.int64),
        np.asarray(origins, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        total_gain,
    )


class ReferenceKernel(MoveKernel):
    """Dict-accumulation oracle kernel."""

    name = "reference"

    def batch_moves(
        self,
        graph,
        state,
        batch,
        resolution,
        *,
        allow_escape=True,
        swap_avoidance=False,
        instr=None,
    ):
        return reference_batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    def single_move(
        self, graph, state, v, resolution, *, allow_escape=True, swap_avoidance=False
    ):
        return reference_single_move(
            graph,
            state,
            v,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
        )

    def sweep(
        self, graph, state, order, resolution, *, allow_escape=True, instr=None
    ):
        return reference_sweep(
            graph, state, order, resolution, allow_escape=allow_escape, instr=instr
        )
