"""Move-evaluation kernels: the reference dict oracle and the
vectorized segment-reduction fast path (DESIGN.md §8).

Engines never import concrete kernels; they resolve one by name via
:func:`get_kernel` (the ``ClusteringConfig.kernel`` knob / ``--kernel``
CLI flag).  Both kernels are bit-identical in outputs and state
mutations — only wall-clock differs — so the choice never changes
``f_objective`` or ``sim_time_seconds``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.kernels.base import GAIN_EPS, MoveKernel
from repro.kernels.reference import ReferenceKernel
from repro.kernels.vectorized import VectorizedKernel

#: Registered kernels by config name.
KERNELS = {
    "reference": ReferenceKernel(),
    "vectorized": VectorizedKernel(),
}

#: The default kernel (``ClusteringConfig.kernel``'s default).
DEFAULT_KERNEL = "vectorized"

#: Supervisor fallback chain: each kernel's next-simpler substitute.  The
#: reference oracle has nothing below it (absent key = bottom rung).
KERNEL_FALLBACKS = {
    "vectorized": "reference",
}


def fallback_kernel(name: str):
    """The next-simpler kernel to fall back to, or ``None`` at the bottom."""
    return KERNEL_FALLBACKS.get(name)


def get_kernel(name: str) -> MoveKernel:
    """Resolve a kernel by config name; raises ``ConfigError`` if unknown."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
        ) from None


__all__ = [
    "DEFAULT_KERNEL",
    "GAIN_EPS",
    "KERNELS",
    "KERNEL_FALLBACKS",
    "MoveKernel",
    "ReferenceKernel",
    "VectorizedKernel",
    "fallback_kernel",
    "get_kernel",
]
