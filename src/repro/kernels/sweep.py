"""Speculative batched evaluation of the *sequential* sweep.

Algorithm 2 moves vertices one at a time, each evaluated against the
state left by all previous moves — seemingly inherently serial.  But a
vertex's evaluation only reads (a) the assignments of its neighbors,
(b) the weights of its candidate clusters (its neighbors' clusters, its
own cluster, and its home slot ``v``), and (c) the size of slot ``v``;
and a single move only writes its mover's assignment plus the weight and
size of two clusters.  So a block of the permutation can be evaluated in
one vectorized batch against the block-start snapshot, and every
position whose reads provably cannot have been touched by an
earlier-in-block predicted mover replays its prediction verbatim:

1. batch-evaluate ``order[pos : pos+block]`` with the segment kernel;
2. *threat analysis* (vectorized): for each position, the earliest
   predicted-mover position that touches anything it reads — via
   ``first_touch`` scatter-mins over source/destination clusters and a
   gather over neighbor adjacency;
3. positions with ``threat >= position`` are **valid**: their sequential
   evaluation would see exactly the snapshot, so the prediction is the
   sequential decision (bit-identical).  Valid spans commit wholesale:
   within a span, movers' touched clusters are pairwise disjoint (a
   second toucher would have been threatened), so scatter-add order
   cannot matter and the span replicates ``move_one`` arithmetic
   exactly;
4. an invalid position recomputes with the dict oracle at its proper
   turn; when the recomputation *confirms* the prediction the block
   continues (the threat model still holds), otherwise the block is cut
   after it and evaluation restarts from the next position.

The block size adapts (doubling on full consumption, halving on early
cuts) so early high-churn sweeps degenerate gracefully toward the
reference loop while late sparse sweeps consume whole blocks at
O(1) Python calls each.

The fast path assumes exact :class:`~repro.core.state.ClusterState`
write semantics; any subclass (``FaultyClusterState`` buffers, delays
and duplicates writes) falls back to the reference sweep, keeping
fault-injection runs bit-identical by construction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.state import ClusterState
from repro.kernels.reference import reference_single_move, reference_sweep
from repro.obs.instrument import M_KERNEL_BLOCK, M_KERNEL_FALLBACK
from repro.parallel.primitives import ragged_gather_indices

#: Initial / minimum speculative block length.
MIN_BLOCK = 64
#: Maximum speculative block length (bounds wasted evaluation on a cut).
MAX_BLOCK = 4096


def _block_threats(
    graph,
    assignments: np.ndarray,
    block: np.ndarray,
    current: np.ndarray,
    targets: np.ndarray,
    pred_move: np.ndarray,
) -> np.ndarray:
    """Earliest predicted-mover position threatening each block position.

    Position ``i`` is threatened by mover position ``p`` when ``p``'s
    source or destination cluster is one ``i`` reads (a neighbor's
    cluster, its own cluster, or its home slot) or when the mover is a
    neighbor of ``i`` (changing ``i``'s candidate set).  Unthreatened
    positions get ``block.size`` (= +inf for position comparisons).
    """
    size = block.size
    movers = np.flatnonzero(pred_move)
    if movers.size == 0:
        return np.full(size, size, dtype=np.int64)
    n = assignments.size
    first_touch = np.full(n, size, dtype=np.int64)
    np.minimum.at(first_touch, targets[movers], movers)
    np.minimum.at(first_touch, current[movers], movers)
    mover_pos = np.full(n, size, dtype=np.int64)
    np.minimum.at(mover_pos, block[movers], movers)
    # Own cluster (stay gain) and home slot (escape-openness reads
    # cluster_sizes[v], which changes only when a move touches cluster v).
    threat = np.minimum(first_touch[current], first_touch[block])
    edge_idx, row = ragged_gather_indices(graph.offsets, block)
    if edge_idx.size:
        nbrs = graph.neighbors[edge_idx]
        np.minimum.at(
            threat,
            row,
            np.minimum(first_touch[assignments[nbrs]], mover_pos[nbrs]),
        )
    return threat


def speculative_sweep(
    graph,
    state,
    order: np.ndarray,
    resolution: float,
    allow_escape: bool = True,
    instr=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Sequential sweep with speculative batched evaluation.

    Bit-identical to :func:`~repro.kernels.reference.reference_sweep`:
    same movers, same targets, same float gains, same state mutations.
    """
    # Deferred import: vectorized.py imports this module for its kernel
    # class, so the batch entry point cannot be imported at module load.
    from repro.kernels.vectorized import vectorized_batch_moves

    if type(state) is not ClusterState:
        # Subclasses (fault injection) have different write semantics than
        # the threat model assumes; the oracle loop is always correct.
        if instr is not None and instr.enabled:
            instr.count(M_KERNEL_FALLBACK, 1.0, site="sweep")
        return reference_sweep(
            graph, state, order, resolution, allow_escape=allow_escape, instr=instr
        )

    movers: list = []
    origins: list = []
    targets_out: list = []
    total_gain = 0.0
    observe = instr is not None and instr.enabled

    assignments = state.assignments
    cluster_weights = state.cluster_weights
    cluster_sizes = state.cluster_sizes
    node_weights = state.node_weights

    def commit_span(block, current, targets, gains, pred_move, lo, hi):
        """Apply a valid span's predicted movers wholesale.

        Touched clusters are pairwise disjoint across the span's movers
        (see module docstring), so each cluster receives at most one
        weight/size update and the scatter adds equal the serial
        ``move_one`` arithmetic bit-for-bit.
        """
        nonlocal total_gain
        idx = np.flatnonzero(pred_move[lo:hi])
        if idx.size == 0:
            return
        idx += lo
        span_movers = block[idx]
        span_src = current[idx]
        span_dst = targets[idx]
        k = node_weights[span_movers].astype(np.float64)
        assignments[span_movers] = span_dst
        np.subtract.at(cluster_weights, span_src, k)
        np.add.at(cluster_weights, span_dst, k)
        np.add.at(cluster_sizes, span_src, -1)
        np.add.at(cluster_sizes, span_dst, 1)
        movers.extend(span_movers.tolist())
        origins.extend(span_src.tolist())
        targets_out.extend(span_dst.tolist())
        # Serial Python adds in visit order, matching the reference loop's
        # float accumulation exactly.
        for gain in gains[idx].tolist():
            total_gain += gain

    pos = 0
    block_size = MIN_BLOCK
    total = order.size
    while pos < total:
        block = order[pos: pos + block_size]
        size = block.size
        targets, gains = vectorized_batch_moves(
            graph,
            state,
            block,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=False,
            instr=instr,
        )
        current = assignments[block]
        pred_move = targets != current
        threat = _block_threats(graph, assignments, block, current, targets, pred_move)
        valid = threat >= np.arange(size, dtype=np.int64)

        consumed = size
        cursor = 0
        for p in np.flatnonzero(~valid).tolist():
            commit_span(block, current, targets, gains, pred_move, cursor, p)
            v = int(block[p])
            target, gain = reference_single_move(
                graph, state, v, resolution, allow_escape=allow_escape
            )
            if gain > 0.0:
                origins.append(int(assignments[v]))
                state.move_one(v, target)
                movers.append(v)
                targets_out.append(target)
                total_gain += gain
            cursor = p + 1
            if target != int(targets[p]) or gain != float(gains[p]):
                # Misprediction: downstream threat analysis is void; cut
                # the block after this position and re-evaluate.
                consumed = cursor
                break
        else:
            commit_span(block, current, targets, gains, pred_move, cursor, size)

        pos += consumed
        if observe:
            instr.observe(M_KERNEL_BLOCK, float(consumed))
        if consumed == block_size:
            block_size = min(block_size * 2, MAX_BLOCK)
        elif consumed < block_size // 2:
            block_size = max(MIN_BLOCK, block_size // 2)

    return (
        np.asarray(movers, dtype=np.int64),
        np.asarray(origins, dtype=np.int64),
        np.asarray(targets_out, dtype=np.int64),
        total_gain,
    )
