"""Segment-reduction batch kernel: every ``S(v, c')`` in one sorted pass.

The batch's CSR slices are expanded to flat ``(vertex, neighbor_cluster,
weight)`` triples via :func:`~repro.parallel.primitives.
ragged_gather_indices`, the packed ``row * n + cluster`` keys are sorted
once (stable), and one segment reduction over the sorted weights
produces every per-(vertex, cluster) sum at once — the semisort-style
aggregation the paper uses for compression (Appendix B), applied to
move evaluation.
The per-vertex argmax (with the stay-put / fresh-singleton candidates
and the ``GAIN_EPS`` strict-improvement guard) is then a handful of
segment reductions: Python-level work is O(1) calls regardless of batch
size.

Bit-identity with the dict oracle is by construction:

* the stable sort keeps each (vertex, cluster) segment in CSR adjacency
  order, and the segment reduction preserves the dict accumulation's
  addition semantics: integer-valued weights (exact under any order)
  use ``add.reduceat``, fractional weights use a ``bincount``
  scatter-add that sums each bucket strictly left-to-right;
* the argmax takes, per vertex, the first segment (= lowest cluster id,
  segments being cluster-sorted) whose gain equals the exact segment
  maximum — the oracle's lowest-id tiebreak;
* IEEE addition is commutative, so assembling ``stay`` as
  ``-λ·k·(K-k) + S_own`` here and ``S_own - λ·k·(K-k)`` there is the
  same float.

Tiny batches (asynchronous concurrency windows degenerate to a few
vertices) are dominated by NumPy per-call overhead, so below
``SMALL_BATCH_WORK`` scanned edges the kernel falls back to the dict
loop — legal precisely because the two paths are bit-identical; the
fallback is counted under ``repro_kernel_fallbacks_total``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.base import GAIN_EPS, MoveKernel
from repro.kernels.reference import reference_batch_moves, reference_single_move
from repro.kernels.sweep import speculative_sweep
from repro.obs.instrument import M_KERNEL_FALLBACK, M_KERNEL_SEGMENTS

#: Below this many scanned entries (batch edges + vertices) the dict loop
#: beats the ~40 fixed NumPy calls of the segment path (measured on the
#: PR3 RMAT workload, where async windows are ~8 vertices of degree ~11).
SMALL_BATCH_WORK = 192


class _KernelScratch:
    """Per-process pool of flat work arrays, grown to the largest batch.

    The segment path's O(deg_sum) intermediates (gather indices, packed
    keys, sorted copies) used to be reallocated on every call; across a
    run that is thousands of multi-megabyte allocations for buffers whose
    size only ever tracks the current batch.  Buffers here grow to the
    next power of two past the largest request and are then reused for
    the life of the process — which makes them shard-local for free under
    the process execution backend (each OS worker holds its own pool,
    sized to its shard).  Views handed out are valid only until the next
    request under the same name; nothing returned by the kernel may alias
    the pool.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs = {}

    def get(self, name: str, size: int, dtype) -> np.ndarray:
        """An uninitialised length-``size`` view of the named buffer."""
        dtype = np.dtype(dtype)
        buf = self._bufs.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            cap = 1 << max(int(max(size, 1) - 1).bit_length(), 6)
            buf = np.empty(cap, dtype=dtype)
            self._bufs[name] = buf
        return buf[:size]

    def iota(self, size: int) -> np.ndarray:
        """``arange(size)`` served from the pool (values never change)."""
        buf = self._bufs.get("iota")
        if buf is None or buf.size < size:
            cap = 1 << max(int(max(size, 1) - 1).bit_length(), 6)
            buf = np.arange(cap, dtype=np.int64)
            self._bufs["iota"] = buf
        return buf[:size]

    def stats(self) -> dict:
        return {name: int(buf.size) for name, buf in sorted(self._bufs.items())}

    def clear(self) -> None:
        self._bufs.clear()


#: The process-wide pool (one per OS process; no threads share it).
_SCRATCH = _KernelScratch()


def kernel_scratch_stats() -> dict:
    """Current scratch capacities by buffer name (tests, diagnostics)."""
    return _SCRATCH.stats()


def reset_kernel_scratch() -> None:
    """Drop all pooled buffers (tests that measure allocation behavior)."""
    _SCRATCH.clear()


def _flat_gather(offsets: np.ndarray, ids: np.ndarray):
    """(edge_idx, row) like ``ragged_gather_indices``, on pooled buffers.

    Identical values to :func:`repro.parallel.primitives.
    ragged_gather_indices`; both outputs are scratch views.
    """
    starts = _SCRATCH.get("row_starts", ids.size, np.int64)
    np.take(offsets, ids, out=starts)
    tmp_ids = _SCRATCH.get("row_tmp", ids.size, np.int64)
    np.add(ids, 1, out=tmp_ids)
    lens = _SCRATCH.get("row_lens", ids.size, np.int64)
    np.take(offsets, tmp_ids, out=lens)
    np.subtract(lens, starts, out=lens)
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    first = _SCRATCH.get("row_first", ids.size, np.int64)
    first[0] = 0
    np.cumsum(lens[:-1], out=first[1:])
    # row-of-edge: mark each row boundary, inclusive-scan.  Boundary
    # positions repeat when zero-degree rows sit between marks, so the
    # marks must accumulate (add.at) rather than overwrite; marks at
    # ``total`` come from trailing zero-degree rows and are dropped.
    row = _SCRATCH.get("row", total, np.int64)
    row[:] = 0
    if ids.size > 1:
        if bool(lens.min() > 0):
            row[first[1:]] = 1
        else:
            marks = first[1:]
            np.add.at(row, marks[marks < total], 1)
    np.cumsum(row, out=row)
    # ragged arange: iota - first[row] + starts[row]
    edge_idx = _SCRATCH.get("edge_idx", total, np.int64)
    tmp = _SCRATCH.get("gather_tmp", total, np.int64)
    np.take(first, row, out=tmp)
    np.subtract(_SCRATCH.iota(total), tmp, out=edge_idx)
    np.take(starts, row, out=tmp)
    np.add(edge_idx, tmp, out=edge_idx)
    return edge_idx, row


def vectorized_batch_moves(
    graph,
    state,
    batch: np.ndarray,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
    instr=None,
    small_batch_work: int = SMALL_BATCH_WORK,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(targets, gains)`` for ``batch`` via one-sort segment reduction."""
    n = graph.num_vertices
    assignments = state.assignments
    cluster_weights = state.cluster_weights

    degrees = graph.offsets[batch + 1] - graph.offsets[batch]
    deg_sum = int(degrees.sum())
    if deg_sum + batch.size < small_batch_work:
        if instr is not None and instr.enabled:
            instr.count(M_KERNEL_FALLBACK, 1.0, site="batch")
        return reference_batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    edge_idx, row = _flat_gather(graph.offsets, batch)
    k_batch = graph.node_weights[batch]
    current = assignments[batch]
    stay_gain = -resolution * k_batch * (cluster_weights[current] - k_batch)
    targets = current.copy()

    if edge_idx.size:
        total = edge_idx.size
        nbrs = _SCRATCH.get("nbrs", total, graph.neighbors.dtype)
        np.take(graph.neighbors, edge_idx, out=nbrs)
        nbr_clusters = _SCRATCH.get("clusters", total, assignments.dtype)
        np.take(assignments, nbrs, out=nbr_clusters)
        edge_w = _SCRATCH.get("weights", total, graph.weights.dtype)
        np.take(graph.weights, edge_idx, out=edge_w)
        # One stable sort groups the flat (vertex, cluster) pairs; reduceat
        # then emits every S(v, c') segment sum in CSR order.
        key = _SCRATCH.get("key", total, np.int64)
        np.multiply(row, np.int64(n), out=key)
        np.add(key, nbr_clusters, out=key)
        order = np.argsort(key, kind="stable")
        sorted_key = _SCRATCH.get("sorted_key", total, np.int64)
        np.take(key, order, out=sorted_key)
        sorted_w = _SCRATCH.get("sorted_weights", total, edge_w.dtype)
        np.take(edge_w, order, out=sorted_w)
        boundary = _SCRATCH.get("boundary", total, bool)
        boundary[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
        seg_start = np.flatnonzero(boundary)
        # reduceat's reduce loop uses SIMD partial accumulators, which
        # reorders float addition within a segment (1-ULP drift against
        # the dict oracle on fractional weights).  Integer-valued weights
        # sum exactly under any order, so they take the faster reduceat;
        # everything else goes through bincount — a plain sequential
        # scatter-add, accumulating each segment strictly left-to-right
        # in CSR adjacency order, the dict oracle's exact addition order.
        if graph.has_integer_weights:
            sums = np.add.reduceat(sorted_w, seg_start)
        else:
            seg_id = _SCRATCH.get("seg_id", total, np.int64)
            np.cumsum(boundary, out=seg_id)
            np.subtract(seg_id, 1, out=seg_id)
            sums = np.bincount(
                seg_id, weights=sorted_w, minlength=seg_start.size
            )
        seg_key = sorted_key[seg_start]
        cand_row = seg_key // np.int64(n)
        cand_cluster = seg_key - cand_row * np.int64(n)
        if instr is not None and instr.enabled:
            instr.observe(M_KERNEL_SEGMENTS, float(seg_start.size))

        own = cand_cluster == current[cand_row]
        if own.any():
            # At most one "own cluster" segment per row: direct scatter.
            stay_gain[cand_row[own]] += sums[own]
        best_gain = stay_gain.copy()

        ext = ~own
        if swap_avoidance and ext.any():
            # Swap-avoidance heuristic for *synchronous* scheduling (Lu et
            # al. [27], used by Grappolo): a singleton vertex may merge
            # into another singleton cluster only when the target id is
            # smaller than its own — otherwise lockstep rounds swap
            # mutually-attracted singleton pairs forever and synchronous
            # runs never converge.  Asynchronous and sequential schedules
            # self-heal (the second vertex of a pair sees the first's
            # move), so they run pure best moves.
            blocked = (
                (state.cluster_sizes[current[cand_row]] == 1)
                & (state.cluster_sizes[cand_cluster] == 1)
                & (cand_cluster > current[cand_row])
            )
            ext &= ~blocked
        ext_idx = np.flatnonzero(ext)
        if ext_idx.size:
            ext_row = cand_row[ext_idx]
            ext_cluster = cand_cluster[ext_idx]
            ext_gain = (
                sums[ext_idx]
                - resolution * k_batch[ext_row] * cluster_weights[ext_cluster]
            )
            # Per-row argmax without a second sort: segments arrive sorted
            # by (row, cluster), so the row maximum comes from one more
            # reduceat and the winner is the first (= lowest cluster id)
            # segment matching it exactly — the oracle's tiebreak.
            row_start = np.empty(ext_row.size, dtype=bool)
            row_start[0] = True
            np.not_equal(ext_row[1:], ext_row[:-1], out=row_start[1:])
            starts = np.flatnonzero(row_start)
            row_max = np.maximum.reduceat(ext_gain, starts)
            counts = np.diff(np.append(starts, ext_row.size))
            hit = np.flatnonzero(ext_gain == np.repeat(row_max, counts))
            rows_of_hit = ext_row[hit]
            keep = np.empty(hit.size, dtype=bool)
            keep[0] = True
            np.not_equal(rows_of_hit[1:], rows_of_hit[:-1], out=keep[1:])
            sel = hit[keep]
            rows_present = rows_of_hit[keep]
            chosen_gain = ext_gain[sel]
            improved = chosen_gain > stay_gain[rows_present] + GAIN_EPS
            winners = rows_present[improved]
            targets[winners] = ext_cluster[sel][improved]
            best_gain[winners] = chosen_gain[improved]
    else:
        best_gain = stay_gain.copy()

    # Escape to the vertex's home slot when it sits empty and every other
    # option (including staying) loses to isolation (gain 0).
    if allow_escape:
        escape = (state.cluster_sizes[batch] == 0) & (best_gain < -GAIN_EPS)
        if escape.any():
            targets[escape] = batch[escape]
            best_gain[escape] = 0.0

    return targets, best_gain - stay_gain


class VectorizedKernel(MoveKernel):
    """Segment-reduction fast path with dict fallback for tiny batches."""

    name = "vectorized"

    def batch_moves(
        self,
        graph,
        state,
        batch,
        resolution,
        *,
        allow_escape=True,
        swap_avoidance=False,
        instr=None,
    ):
        return vectorized_batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    def single_move(
        self, graph, state, v, resolution, *, allow_escape=True, swap_avoidance=False
    ):
        # A batch of one IS a dict: the event-driven oracle commits one
        # vertex at a time, and the measured dirty-tracking variant cost
        # more in invalidation checks than the dict evaluation it avoided
        # (DESIGN.md §8), so both kernels share the reference single path.
        return reference_single_move(
            graph,
            state,
            v,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
        )

    def sweep(
        self, graph, state, order, resolution, *, allow_escape=True, instr=None
    ):
        return speculative_sweep(
            graph, state, order, resolution, allow_escape=allow_escape, instr=instr
        )
