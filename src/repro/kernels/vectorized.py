"""Segment-reduction batch kernel: every ``S(v, c')`` in one sorted pass.

The batch's CSR slices are expanded to flat ``(vertex, neighbor_cluster,
weight)`` triples via :func:`~repro.parallel.primitives.
ragged_gather_indices`, the packed ``row * n + cluster`` keys are sorted
once (stable), and one segment reduction over the sorted weights
produces every per-(vertex, cluster) sum at once — the semisort-style
aggregation the paper uses for compression (Appendix B), applied to
move evaluation.
The per-vertex argmax (with the stay-put / fresh-singleton candidates
and the ``GAIN_EPS`` strict-improvement guard) is then a handful of
segment reductions: Python-level work is O(1) calls regardless of batch
size.

Bit-identity with the dict oracle is by construction:

* the stable sort keeps each (vertex, cluster) segment in CSR adjacency
  order, and the segment reduction preserves the dict accumulation's
  addition semantics: integer-valued weights (exact under any order)
  use ``add.reduceat``, fractional weights use a ``bincount``
  scatter-add that sums each bucket strictly left-to-right;
* the argmax takes, per vertex, the first segment (= lowest cluster id,
  segments being cluster-sorted) whose gain equals the exact segment
  maximum — the oracle's lowest-id tiebreak;
* IEEE addition is commutative, so assembling ``stay`` as
  ``-λ·k·(K-k) + S_own`` here and ``S_own - λ·k·(K-k)`` there is the
  same float.

Tiny batches (asynchronous concurrency windows degenerate to a few
vertices) are dominated by NumPy per-call overhead, so below
``SMALL_BATCH_WORK`` scanned edges the kernel falls back to the dict
loop — legal precisely because the two paths are bit-identical; the
fallback is counted under ``repro_kernel_fallbacks_total``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.base import GAIN_EPS, MoveKernel
from repro.kernels.reference import reference_batch_moves, reference_single_move
from repro.kernels.sweep import speculative_sweep
from repro.obs.instrument import M_KERNEL_FALLBACK, M_KERNEL_SEGMENTS
from repro.parallel.primitives import ragged_gather_indices

#: Below this many scanned entries (batch edges + vertices) the dict loop
#: beats the ~40 fixed NumPy calls of the segment path (measured on the
#: PR3 RMAT workload, where async windows are ~8 vertices of degree ~11).
SMALL_BATCH_WORK = 192


def vectorized_batch_moves(
    graph,
    state,
    batch: np.ndarray,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
    instr=None,
    small_batch_work: int = SMALL_BATCH_WORK,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(targets, gains)`` for ``batch`` via one-sort segment reduction."""
    n = graph.num_vertices
    assignments = state.assignments
    cluster_weights = state.cluster_weights

    degrees = graph.offsets[batch + 1] - graph.offsets[batch]
    deg_sum = int(degrees.sum())
    if deg_sum + batch.size < small_batch_work:
        if instr is not None and instr.enabled:
            instr.count(M_KERNEL_FALLBACK, 1.0, site="batch")
        return reference_batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    edge_idx, row = ragged_gather_indices(graph.offsets, batch)
    k_batch = graph.node_weights[batch]
    current = assignments[batch]
    stay_gain = -resolution * k_batch * (cluster_weights[current] - k_batch)
    targets = current.copy()

    if edge_idx.size:
        nbr_clusters = assignments[graph.neighbors[edge_idx]]
        edge_w = graph.weights[edge_idx]
        # One stable sort groups the flat (vertex, cluster) pairs; reduceat
        # then emits every S(v, c') segment sum in CSR order.
        key = row * np.int64(n) + nbr_clusters
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        boundary = np.empty(sorted_key.size, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
        seg_start = np.flatnonzero(boundary)
        # reduceat's reduce loop uses SIMD partial accumulators, which
        # reorders float addition within a segment (1-ULP drift against
        # the dict oracle on fractional weights).  Integer-valued weights
        # sum exactly under any order, so they take the faster reduceat;
        # everything else goes through bincount — a plain sequential
        # scatter-add, accumulating each segment strictly left-to-right
        # in CSR adjacency order, the dict oracle's exact addition order.
        if graph.has_integer_weights:
            sums = np.add.reduceat(edge_w[order], seg_start)
        else:
            seg_id = np.cumsum(boundary) - 1
            sums = np.bincount(
                seg_id, weights=edge_w[order], minlength=seg_start.size
            )
        seg_key = sorted_key[seg_start]
        cand_row = seg_key // np.int64(n)
        cand_cluster = seg_key - cand_row * np.int64(n)
        if instr is not None and instr.enabled:
            instr.observe(M_KERNEL_SEGMENTS, float(seg_start.size))

        own = cand_cluster == current[cand_row]
        if own.any():
            # At most one "own cluster" segment per row: direct scatter.
            stay_gain[cand_row[own]] += sums[own]
        best_gain = stay_gain.copy()

        ext = ~own
        if swap_avoidance and ext.any():
            # Swap-avoidance heuristic for *synchronous* scheduling (Lu et
            # al. [27], used by Grappolo): a singleton vertex may merge
            # into another singleton cluster only when the target id is
            # smaller than its own — otherwise lockstep rounds swap
            # mutually-attracted singleton pairs forever and synchronous
            # runs never converge.  Asynchronous and sequential schedules
            # self-heal (the second vertex of a pair sees the first's
            # move), so they run pure best moves.
            blocked = (
                (state.cluster_sizes[current[cand_row]] == 1)
                & (state.cluster_sizes[cand_cluster] == 1)
                & (cand_cluster > current[cand_row])
            )
            ext &= ~blocked
        ext_idx = np.flatnonzero(ext)
        if ext_idx.size:
            ext_row = cand_row[ext_idx]
            ext_cluster = cand_cluster[ext_idx]
            ext_gain = (
                sums[ext_idx]
                - resolution * k_batch[ext_row] * cluster_weights[ext_cluster]
            )
            # Per-row argmax without a second sort: segments arrive sorted
            # by (row, cluster), so the row maximum comes from one more
            # reduceat and the winner is the first (= lowest cluster id)
            # segment matching it exactly — the oracle's tiebreak.
            row_start = np.empty(ext_row.size, dtype=bool)
            row_start[0] = True
            np.not_equal(ext_row[1:], ext_row[:-1], out=row_start[1:])
            starts = np.flatnonzero(row_start)
            row_max = np.maximum.reduceat(ext_gain, starts)
            counts = np.diff(np.append(starts, ext_row.size))
            hit = np.flatnonzero(ext_gain == np.repeat(row_max, counts))
            rows_of_hit = ext_row[hit]
            keep = np.empty(hit.size, dtype=bool)
            keep[0] = True
            np.not_equal(rows_of_hit[1:], rows_of_hit[:-1], out=keep[1:])
            sel = hit[keep]
            rows_present = rows_of_hit[keep]
            chosen_gain = ext_gain[sel]
            improved = chosen_gain > stay_gain[rows_present] + GAIN_EPS
            winners = rows_present[improved]
            targets[winners] = ext_cluster[sel][improved]
            best_gain[winners] = chosen_gain[improved]
    else:
        best_gain = stay_gain.copy()

    # Escape to the vertex's home slot when it sits empty and every other
    # option (including staying) loses to isolation (gain 0).
    if allow_escape:
        escape = (state.cluster_sizes[batch] == 0) & (best_gain < -GAIN_EPS)
        if escape.any():
            targets[escape] = batch[escape]
            best_gain[escape] = 0.0

    return targets, best_gain - stay_gain


class VectorizedKernel(MoveKernel):
    """Segment-reduction fast path with dict fallback for tiny batches."""

    name = "vectorized"

    def batch_moves(
        self,
        graph,
        state,
        batch,
        resolution,
        *,
        allow_escape=True,
        swap_avoidance=False,
        instr=None,
    ):
        return vectorized_batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )

    def single_move(
        self, graph, state, v, resolution, *, allow_escape=True, swap_avoidance=False
    ):
        # A batch of one IS a dict: the event-driven oracle commits one
        # vertex at a time, and the measured dirty-tracking variant cost
        # more in invalidation checks than the dict evaluation it avoided
        # (DESIGN.md §8), so both kernels share the reference single path.
        return reference_single_move(
            graph,
            state,
            v,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
        )

    def sweep(
        self, graph, state, order, resolution, *, allow_escape=True, instr=None
    ):
        return speculative_sweep(
            graph, state, order, resolution, allow_escape=allow_escape, instr=instr
        )
