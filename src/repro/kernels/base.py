"""Kernel-layer contract: how engines evaluate best moves.

A *move kernel* answers one question — "where does this vertex (or this
whole batch of vertices) want to go, against the current state snapshot?"
— at three granularities:

* :meth:`MoveKernel.batch_moves` — a whole batch/frontier against one
  snapshot (the synchronous step and the asynchronous concurrency
  window);
* :meth:`MoveKernel.single_move` — one vertex (the sequential and
  event-driven engines' granularity);
* :meth:`MoveKernel.sweep` — a full sequential sweep with immediate
  moves (Algorithm 2's inner loop), where the kernel may batch the
  *evaluation* as long as the per-vertex decisions and state mutations
  are bit-identical to the vertex-at-a-time loop.

Kernels are pure evaluation: they never touch the simulated cost ledger.
Charging (``kernel_depth`` / ``_charge_batch`` in
:mod:`repro.core.moves`) happens in the engine-facing wrappers and is
invoked identically for every kernel, which is what keeps
``sim_time_seconds`` bit-for-bit comparable across
``kernel="reference"`` and ``kernel="vectorized"`` runs (DESIGN.md §8).

The two registered kernels are required to be *bit-identical* in their
outputs — targets, gains, and (for sweeps) the exact sequence of state
mutations — so the reference dict kernel serves as the oracle the
vectorized fast path is property-tested against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Minimum strict improvement for a move (guards float-noise oscillation).
#: Defined here (not in ``repro.core.moves``) so kernels can use it without
#: importing the charging layer; ``moves`` re-exports it for back-compat.
GAIN_EPS = 1e-10


class MoveKernel:
    """Abstract move-evaluation kernel (see module docstring).

    ``gains`` are always *relative*: the objective improvement of taking
    the returned move versus staying put (0.0 when the vertex stays).
    """

    name: str = "abstract"

    def batch_moves(
        self,
        graph,
        state,
        batch: np.ndarray,
        resolution: float,
        *,
        allow_escape: bool = True,
        swap_avoidance: bool = False,
        instr=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, gains)`` for ``batch`` against the state snapshot."""
        raise NotImplementedError

    def single_move(
        self,
        graph,
        state,
        v: int,
        resolution: float,
        *,
        allow_escape: bool = True,
        swap_avoidance: bool = False,
    ) -> Tuple[int, float]:
        """``(target, gain)`` for one vertex against the current state."""
        raise NotImplementedError

    def sweep(
        self,
        graph,
        state,
        order: np.ndarray,
        resolution: float,
        *,
        allow_escape: bool = True,
        instr=None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """One sequential sweep of immediate best moves over ``order``.

        Mutates ``state`` exactly as the vertex-at-a-time loop would
        (same ``move_one`` calls in the same order) and returns
        ``(movers, origins, targets, total_gain)``.
        """
        raise NotImplementedError
