"""Leiden-style connectivity refinement for LambdaCC (extension).

The paper's related work cites Traag, Waltman & van Eck's "From Louvain
to Leiden: guaranteeing well-connected communities" [41]: Louvain (and
PARALLEL-CC) can emit *disconnected* clusters — a vertex set whose
induced subgraph splits into components that merely share a label.  The
Leiden remedy is a refinement phase that re-partitions each cluster into
its connected, locally-optimal pieces before coarsening.

This module adapts that idea to the LambdaCC objective as a
post-processing pass over any clustering:

1. split every cluster into the connected components of its induced
   positive-edge subgraph (:func:`split_disconnected_clusters`);
2. optionally run BEST-MOVES again to re-optimize, and repeat until no
   cluster is disconnected (:func:`leiden_refine`).

Splitting a disconnected LambdaCC cluster never lowers the objective:
severing two components removes only non-edge pairs (no positive intra
edges cross components by construction, and every non-edge pair
contributes ``-lambda k_u k_v <= 0``) — property-tested.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph


def _positive_intra_components(
    graph: CSRGraph, assignments: np.ndarray
) -> np.ndarray:
    """Component label per vertex of the positive intra-cluster subgraph.

    Two vertices are connected when a path of positive-weight edges links
    them *within their shared cluster*.  Vectorized min-label propagation
    with pointer jumping, restricted to intra-cluster positive edges.
    """
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    keep = (graph.weights > 0) & (assignments[src] == assignments[graph.neighbors])
    src = src[keep]
    dst = graph.neighbors[keep]
    labels = np.arange(n, dtype=np.int64)
    while True:
        pulled = labels.copy()
        if src.size:
            np.minimum.at(pulled, src, labels[dst])
        pulled = np.minimum(pulled, pulled[pulled])
        pulled = pulled[pulled]
        if np.array_equal(pulled, labels):
            break
        labels = pulled
    return labels


def count_disconnected_clusters(graph: CSRGraph, assignments: np.ndarray) -> int:
    """Number of clusters whose induced positive subgraph is disconnected."""
    assignments = np.asarray(assignments, dtype=np.int64)
    components = _positive_intra_components(graph, assignments)
    # Pair (cluster, component) — a cluster is disconnected iff it holds
    # more than one component.
    pairs = np.stack([assignments, components], axis=1)
    unique_pairs = np.unique(pairs, axis=0)
    per_cluster = np.bincount(unique_pairs[:, 0], minlength=int(assignments.max()) + 1)
    return int((per_cluster > 1).sum())


def split_disconnected_clusters(
    graph: CSRGraph, assignments: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Split every cluster into its positive connected components.

    Returns ``(new_assignments, num_splits)`` with dense labels;
    ``num_splits`` counts clusters that were actually split.
    """
    assignments = np.asarray(assignments, dtype=np.int64)
    num_disconnected = count_disconnected_clusters(graph, assignments)
    components = _positive_intra_components(graph, assignments)
    # (cluster, component) pairs become the new clusters.
    n = graph.num_vertices
    key = assignments * np.int64(n) + components
    _, dense = np.unique(key, return_inverse=True)
    return dense.astype(np.int64), num_disconnected


def leiden_refine(
    graph: CSRGraph,
    assignments: np.ndarray,
    resolution: float,
    config: Optional[ClusteringConfig] = None,
    rng: Optional[np.random.Generator] = None,
    max_rounds: int = 10,
    sched=None,
) -> Tuple[np.ndarray, int]:
    """Alternate component splitting and BEST-MOVES until well-connected.

    Returns ``(assignments, rounds_used)``.  The result is guaranteed
    connected (every cluster's positive induced subgraph is one
    component) when the loop converges within ``max_rounds``; one final
    split is applied unconditionally so the guarantee holds regardless.
    """
    config = config or ClusteringConfig(resolution=resolution)
    labels = np.asarray(assignments, dtype=np.int64).copy()
    rounds = 0
    for _ in range(max_rounds):
        labels, num_split = split_disconnected_clusters(graph, labels)
        if num_split == 0:
            break
        rounds += 1
        state = ClusterState.from_assignments(graph, labels)
        run_best_moves(graph, state, resolution, config, sched=sched, rng=rng)
        labels = state.assignments
    labels, _ = split_disconnected_clusters(graph, labels)
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64), rounds
