"""The LambdaCC objective and its modularity specialization (Section 2).

Definitions (paper Section 2): with resolution ``lambda`` and vertex
weights ``k``, the rescaled weight of a pair is ``w'_uv = w_uv - lambda
k_u k_v`` for edges, ``-lambda k_u k_v`` for non-edges, ``0`` on the
diagonal, and the objective is ``CC(x) = sum over ordered pairs (i, j) of
w'_ij (1 - x_ij)``.

We compute the *unordered* form

    F(C) = sum_{intra edges u<v} w_uv + sum_v self_loop(v)
           - lambda * sum_clusters (K_c^2 - K2_c) / 2

where ``K_c`` sums ``node_weights`` and ``K2_c`` sums ``node_weight_sq``
over the cluster.  Because ``node_weight_sq`` carries the squared weights
of the *original* vertices a compressed vertex absorbed, ``F`` is exactly
invariant under compression — the invariant the multi-level algorithm
relies on.  The paper's ordered objective is ``2 F``.

Modularity: with ``k_v = d_v`` (weighted degree) and ``lambda = gamma /
(2 m_w)``, Reichardt–Bornholdt modularity equals ``CC / (2 m_w) = F / m_w``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def intra_cluster_edge_weight(graph: CSRGraph, assignments: np.ndarray) -> float:
    """Total weight of intra-cluster edges, including self-loops."""
    assignments = np.asarray(assignments)
    total = float(graph.self_loops.sum())
    if graph.num_directed_edges:
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
        )
        same = assignments[src] == assignments[graph.neighbors]
        total += float(graph.weights[same].sum()) / 2.0
    return total


def cluster_weight_penalty(graph: CSRGraph, assignments: np.ndarray) -> float:
    """``sum_clusters (K_c^2 - K2_c) / 2`` — the pair-weight mass per cluster."""
    assignments = np.asarray(assignments)
    _, dense = np.unique(assignments, return_inverse=True)
    big_k = np.bincount(dense, weights=graph.node_weights)
    big_k2 = np.bincount(dense, weights=graph.node_weight_sq)
    return float(((big_k**2 - big_k2) / 2.0).sum())


def lambdacc_objective(
    graph: CSRGraph, assignments: np.ndarray, resolution: float
) -> float:
    """Unordered LambdaCC objective ``F(C)`` at the given ``lambda``."""
    return intra_cluster_edge_weight(graph, assignments) - resolution * (
        cluster_weight_penalty(graph, assignments)
    )


def cc_objective(graph: CSRGraph, assignments: np.ndarray, resolution: float) -> float:
    """The paper's (ordered-pair) CC objective: ``2 F(C)``."""
    return 2.0 * lambdacc_objective(graph, assignments, resolution)


def modularity_lambda(graph: CSRGraph, gamma: float) -> float:
    """The LambdaCC resolution equivalent to modularity at ``gamma``."""
    m_w = graph.total_edge_weight
    if m_w <= 0:
        raise ValueError("modularity requires positive total edge weight")
    return gamma / (2.0 * m_w)


def modularity_graph(graph: CSRGraph) -> CSRGraph:
    """The graph re-weighted for modularity: ``k_v = weighted degree``.

    Modularity's null model needs non-negative degrees; negative edge
    weights (meaningful for correlation clustering) are rejected here.
    """
    if graph.weights.size and graph.weights.min() < 0:
        raise ValueError(
            "modularity is undefined on graphs with negative edge weights; "
            "use the correlation objective for signed graphs"
        )
    degrees = graph.weighted_degrees()
    return graph.with_node_weights(degrees, node_weight_sq=degrees**2)


def modularity(
    graph: CSRGraph,
    assignments: np.ndarray,
    gamma: float = 1.0,
    total_weight: float | None = None,
) -> float:
    """Reichardt–Bornholdt modularity ``Q`` of a clustering.

    ``gamma = 1`` recovers Girvan–Newman modularity.  ``total_weight``
    overrides ``m_w`` when evaluating a coarsened graph against the original
    normalization (the multi-level algorithm's case).
    """
    m_w = graph.total_edge_weight if total_weight is None else total_weight
    if m_w <= 0:
        raise ValueError("modularity requires positive total edge weight")
    mod_graph = modularity_graph(graph)
    f_value = lambdacc_objective(mod_graph, assignments, gamma / (2.0 * m_w))
    return f_value / m_w


def move_delta(
    graph: CSRGraph,
    assignments: np.ndarray,
    cluster_weights: np.ndarray,
    v: int,
    target: int,
    resolution: float,
) -> float:
    """Objective change (unordered ``F`` scale) of moving ``v`` to ``target``.

    Reference implementation of the Appendix A formula; the production
    kernels in :mod:`repro.core.moves` vectorize the same arithmetic.
    Used by tests to cross-check the vectorized kernels.
    """
    nbrs, wts = graph.neighborhood(v)
    current = assignments[v]
    if target == current:
        return 0.0
    k_v = graph.node_weights[v]
    to_target = float(wts[assignments[nbrs] == target].sum())
    to_current = float(wts[assignments[nbrs] == current].sum())
    gain_target = to_target - resolution * k_v * cluster_weights[target]
    gain_current = to_current - resolution * k_v * (cluster_weights[current] - k_v)
    return gain_target - gain_current
