"""User-facing clustering entry points.

:func:`cluster` runs the configured algorithm end to end; the two
convenience wrappers mirror the paper's implementation names:

* :func:`correlation_clustering`  — PAR-CC / SEQ-CC;
* :func:`modularity_clustering`   — PAR-MOD / SEQ-MOD (vertex weights set
  to weighted degrees, ``lambda = gamma / (2 m_w)``, Section 2).
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.core.options import RunOptions
from repro.core.louvain_par import parallel_cc
from repro.core.louvain_seq import sequential_cc
from repro.core.objective import (
    lambdacc_objective,
    modularity_graph,
    modularity_lambda,
)
from repro.core.result import ClusterResult
from repro.errors import ConfigError, InvariantViolation
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import MemoryTracker
from repro.obs.instrument import (
    M_MODULARITY,
    M_OBJECTIVE,
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from repro.parallel.scheduler import SimulatedScheduler
from repro.resilience.context import ResilienceContext, ResiliencePolicy
from repro.utils.rng import make_rng
from repro.utils.timing import WallTimer


class _Unset:
    """Sentinel distinguishing "kwarg not passed" from an explicit ``None``
    on the deprecated ``cluster`` keywords.  The stable repr keeps
    ``inspect.signature(cluster)`` machine-independent — the API-surface
    snapshot (``repro.api``) hashes signatures, and the default
    ``<object object at 0x...>`` repr would embed a memory address."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<unset>"


_UNSET = _Unset()


def _resolve_options(options, legacy: dict) -> RunOptions:
    """Merge the deprecated per-subsystem kwargs into a RunOptions.

    A positional :class:`~repro.resilience.context.ResiliencePolicy` in
    the ``options`` slot (the pre-RunOptions third positional argument)
    is accepted as a deprecated spelling of ``resilience=``.
    """
    from repro.resilience.context import ResiliencePolicy

    if isinstance(options, ResiliencePolicy):
        warnings.warn(
            "passing a ResiliencePolicy positionally to cluster() is "
            "deprecated; use cluster(graph, config, "
            "options=RunOptions(resilience=policy))",
            DeprecationWarning,
            stacklevel=3,
        )
        legacy = dict(legacy)
        legacy.setdefault("resilience", options)
        options = None
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if not passed:
        return options if options is not None else RunOptions()
    names = ", ".join(sorted(passed))
    if options is not None:
        overlap = sorted(
            k for k in passed if getattr(options, k) is not None
        )
        if overlap:
            raise ConfigError(
                "cluster() received both options= and the deprecated "
                f"keyword(s) {', '.join(overlap)}; set them on RunOptions "
                "only"
            )
    warnings.warn(
        f"cluster() keyword(s) {names} are deprecated; pass "
        f"options=RunOptions({names}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    base = options if options is not None else RunOptions()
    return base.merged_with(**passed)


def cluster(
    graph: CSRGraph,
    config: ClusteringConfig,
    options: Optional[RunOptions] = None,
    *,
    resilience=_UNSET,
    instrumentation=_UNSET,
    engine=_UNSET,
    supervisor=_UNSET,
    backend=_UNSET,
) -> ClusterResult:
    """Cluster ``graph`` according to ``config``; see :class:`ClusterResult`.

    ``options`` bundles the execution context as a
    :class:`~repro.core.options.RunOptions` (DESIGN.md §14):

    * ``options.resilience`` attaches a
      :class:`~repro.resilience.context.ResiliencePolicy`: fault injection,
      invariant auditing, run budgets with graceful degradation, and
      checkpoint/resume.  A degraded run returns its best-so-far clustering
      with ``result.degraded`` set and the reasons in ``result.failure_log``
      instead of raising.
    * ``options.instrumentation`` attaches an
      :class:`~repro.obs.instrument.Instrumentation`: a structured trace of
      nested ``run → level → phase → round`` spans plus a metrics registry,
      exportable afterwards via ``instrumentation.write_trace()`` /
      ``write_metrics()``.  Absent or disabled, every hook is a no-op.
    * ``options.engine`` overrides the BEST-MOVES engine by registry name
      (see :data:`repro.core.engines.ENGINES`); by default
      ``config.parallel`` selects the paper's relaxed engine or the
      sequential baseline.
    * ``options.supervisor`` attaches a
      :class:`~repro.supervisor.RunSupervisor`: retry-with-resume, watchdog
      deadlines, and the fallback ladder (DESIGN.md §10), with every
      recovery decision in ``failure_log`` and ``extras["supervisor"]``.
    * ``options.backend`` passes an already-open
      :class:`~repro.parallel.backend.ExecutionBackend` (the dynamic
      subsystem reuses one warm process pool across update batches); when
      omitted, ``config.backend`` selects one, created and closed inside
      this call.  Backends never change results (DESIGN.md §13).

    The pre-``RunOptions`` keywords (``resilience=``, ``instrumentation=``,
    ``engine=``, ``supervisor=``, ``backend=``) still work as deprecated
    shims: they emit :class:`DeprecationWarning` and forward, producing
    bit-identical results.
    """
    opts = _resolve_options(
        options,
        {
            "resilience": resilience,
            "instrumentation": instrumentation,
            "engine": engine,
            "supervisor": supervisor,
            "backend": backend,
        },
    )
    resilience = opts.resilience
    instrumentation = opts.instrumentation
    engine = opts.engine
    backend = opts.backend
    if opts.supervisor is not None:
        return opts.supervisor.run(
            graph,
            config,
            resilience=resilience,
            instrumentation=instrumentation,
            engine=engine,
        )
    if graph.num_vertices == 0:
        raise ValueError("cannot cluster an empty graph")
    instr = (
        instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    )
    if config.objective is Objective.MODULARITY:
        working = modularity_graph(graph)
        effective_lambda = modularity_lambda(graph, config.resolution)
        total_weight = graph.total_edge_weight
    else:
        working = graph
        effective_lambda = config.resolution
        total_weight = graph.total_edge_weight

    sched = SimulatedScheduler(
        num_workers=config.resolved_workers if config.parallel else 1,
        machine=config.machine,
        instr=instr,
    )
    owns_backend = False
    exec_backend = backend
    if exec_backend is None and config.backend != "simulated":
        from repro.parallel.backend import create_backend

        exec_backend = create_backend(
            config.backend,
            workers=config.resolved_workers,
            machine=config.machine,
        )
        owns_backend = True
    if exec_backend is not None and not exec_backend.inline:
        sched.backend = exec_backend
    memory = MemoryTracker()
    rng = make_rng(config.seed)
    ctx = ResilienceContext(resilience, sched=sched) if resilience else None
    if engine is not None:
        from functools import partial

        from repro.core.engines import multilevel_with_engine

        driver = partial(multilevel_with_engine, engine=engine)
    else:
        driver = parallel_cc if config.parallel else sequential_cc
    try:
        with instr.span(
            "run",
            algorithm=config.describe(),
            engine=engine,
            objective=config.objective.name.lower(),
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            resolution=config.resolution,
        ) as run_span:
            with WallTimer() as timer:
                assignments, stats = driver(
                    working,
                    effective_lambda,
                    config,
                    sched=sched,
                    rng=rng,
                    memory=memory,
                    resilience=ctx,
                )
            _, dense = np.unique(assignments, return_inverse=True)
            dense = dense.astype(np.int64)
            return _finish_run(
                graph,
                working,
                config,
                resilience,
                instr,
                run_span,
                sched,
                memory,
                timer,
                ctx,
                dense,
                stats,
                effective_lambda,
                total_weight,
                exec_backend,
            )
    finally:
        # Backends created by this call are torn down here even on error
        # paths: the process pool exits and every shared segment is
        # unlinked (the leak test's normal-exit contract).
        if owns_backend and exec_backend is not None:
            exec_backend.close()


def _finish_run(
    graph,
    working,
    config,
    resilience,
    instr,
    run_span,
    sched,
    memory,
    timer,
    ctx,
    dense,
    stats,
    effective_lambda,
    total_weight,
    exec_backend,
) -> ClusterResult:
    """Score, audit, and package one finished clustering run."""
    f_value = lambdacc_objective(working, dense, effective_lambda)
    if config.objective is Objective.MODULARITY:
        mod_value = f_value / total_weight
    elif total_weight > 0 and (
        graph.weights.size == 0 or graph.weights.min() >= 0
    ):
        mod_graph = modularity_graph(graph)
        mod_f = lambdacc_objective(
            mod_graph, dense, modularity_lambda(graph, 1.0)
        )
        mod_value = mod_f / total_weight
    else:
        # Signed or empty graphs: modularity undefined; report 0.
        mod_value = 0.0

    extras: dict = {}
    if getattr(graph, "repairs", None):
        extras["input_repairs"] = dict(graph.repairs)
    if exec_backend is not None and not exec_backend.inline:
        extras["backend"] = exec_backend.stats()
    degraded = False
    failure_log: list = []
    if ctx is not None:
        if ctx.auditor is not None:
            issues = ctx.auditor.verify_result(
                working, dense, effective_lambda, f_value
            )
            if issues:
                message = "final result audit failed: " + "; ".join(issues)
                if resilience.strict:
                    raise InvariantViolation(message)
                ctx.degrade(message, kind="audit-failed")
        degraded = ctx.degraded
        failure_log = list(ctx.failure_log)
        if resilience.faults is not None:
            extras["fault_injections"] = dict(resilience.faults.counts)

    num_clusters = int(dense.max()) + 1 if dense.size else 0
    run_span.set(
        clusters=num_clusters,
        levels=stats.num_levels,
        rounds=stats.total_iterations,
        moves=stats.total_moves,
        objective=2.0 * f_value,
        modularity=mod_value,
        degraded=degraded,
    )
    instr.set_gauge(M_OBJECTIVE, f_value)
    instr.set_gauge(M_MODULARITY, mod_value)

    return ClusterResult(
        assignments=dense,
        objective=2.0 * f_value,
        f_objective=f_value,
        modularity=mod_value,
        resolution=config.resolution,
        effective_lambda=effective_lambda,
        config=config,
        stats=stats,
        ledger=sched.ledger,
        machine=config.machine,
        peak_memory_bytes=memory.peak_bytes,
        input_bytes=graph.nbytes,
        wall_seconds=timer.elapsed,
        seed=config.seed,
        degraded=degraded,
        failure_log=failure_log,
        extras=extras,
    )


def correlation_clustering(
    graph: CSRGraph,
    resolution: float = 0.01,
    parallel: bool = True,
    mode: Mode = Mode.ASYNC,
    frontier: Frontier = Frontier.VERTEX_NEIGHBORS,
    refine: bool = True,
    num_iter: Optional[int] = 10,
    num_workers: int = 60,
    seed: Optional[int] = None,
    **kwargs,
) -> ClusterResult:
    """Cluster under the LambdaCC correlation objective (PAR-CC / SEQ-CC).

    ``resolution`` is the paper's lambda: low values (e.g. 0.01) give few,
    large clusters; high values (e.g. 0.85) give many small clusters.
    ``num_iter=None`` runs to convergence (SEQ-CC^CON when
    ``parallel=False``).
    """
    config = ClusteringConfig(
        objective=Objective.CORRELATION,
        resolution=resolution,
        parallel=parallel,
        mode=mode,
        frontier=frontier,
        refine=refine,
        num_iter=num_iter,
        num_workers=num_workers,
        seed=seed,
        **kwargs,
    )
    return cluster(graph, config)


def modularity_clustering(
    graph: CSRGraph,
    gamma: float = 1.0,
    parallel: bool = True,
    mode: Mode = Mode.ASYNC,
    frontier: Frontier = Frontier.VERTEX_NEIGHBORS,
    refine: bool = True,
    num_iter: Optional[int] = 10,
    num_workers: int = 60,
    seed: Optional[int] = None,
    **kwargs,
) -> ClusterResult:
    """Cluster under Reichardt–Bornholdt modularity (PAR-MOD / SEQ-MOD).

    ``gamma = 1`` recovers Girvan–Newman modularity.  Internally this is
    the LambdaCC objective with ``k_v = d_v`` and
    ``lambda = gamma / (2 m_w)`` (Section 2).
    """
    config = ClusteringConfig(
        objective=Objective.MODULARITY,
        resolution=gamma,
        parallel=parallel,
        mode=mode,
        frontier=frontier,
        refine=refine,
        num_iter=num_iter,
        num_workers=num_workers,
        seed=seed,
        **kwargs,
    )
    return cluster(graph, config)
