"""Multi-resolution cluster hierarchies.

The multilevel Louvain recursion produces a dendrogram as a by-product:
every coarsening level is a clustering of the original vertices, from
fine (level 0's best-moves result) to coarse (the final clustering).  The
paper only returns the final level; this extension materializes the whole
hierarchy, which downstream users want for multi-resolution analysis
(pick the level whose granularity fits the task) without re-running a
resolution sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig, Objective
from repro.core.objective import (
    lambdacc_objective,
    modularity_graph,
    modularity_lambda,
)
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.graphs.quotient import compress_graph
from repro.utils.rng import make_rng


@dataclass
class HierarchyLevel:
    """One level of the dendrogram, expressed on the *original* vertices."""

    level: int
    assignments: np.ndarray  # dense labels per original vertex
    num_clusters: int
    objective: float  # unordered F at this level's clustering


@dataclass
class ClusterHierarchy:
    """The full coarsening dendrogram of one clustering run."""

    levels: List[HierarchyLevel] = field(default_factory=list)
    resolution: float = 0.0

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def finest(self) -> HierarchyLevel:
        return self.levels[0]

    def coarsest(self) -> HierarchyLevel:
        return self.levels[-1]

    def best_level(self) -> HierarchyLevel:
        """The level with the highest objective."""
        return max(self.levels, key=lambda lv: lv.objective)

    def level_with_clusters(self, target: int) -> HierarchyLevel:
        """The level whose cluster count is closest to ``target``."""
        return min(self.levels, key=lambda lv: abs(lv.num_clusters - target))

    def is_nested(self) -> bool:
        """True when every coarser level merges (never splits) the finer.

        Coarsening guarantees nesting by construction; exposed for tests
        and sanity checks.
        """
        for fine, coarse in zip(self.levels, self.levels[1:]):
            # Each fine cluster must map into exactly one coarse cluster.
            pairs = np.stack([fine.assignments, coarse.assignments], axis=1)
            unique_pairs = np.unique(pairs, axis=0)
            fine_counts = np.bincount(unique_pairs[:, 0])
            if np.any(fine_counts > 1):
                return False
        return True


def cluster_hierarchy(
    graph: CSRGraph,
    config: ClusteringConfig,
) -> ClusterHierarchy:
    """Run the multilevel coarsening and record every level's clustering.

    Refinement is intentionally skipped (it would destroy the nesting
    property between recorded levels); use :func:`repro.core.api.cluster`
    for the paper's refined final clustering.
    """
    if config.objective is Objective.MODULARITY:
        working = modularity_graph(graph)
        resolution = modularity_lambda(graph, config.resolution)
    else:
        working = graph
        resolution = config.resolution
    rng = make_rng(config.seed)
    hierarchy = ClusterHierarchy(resolution=resolution)

    current = working
    to_original = np.arange(graph.num_vertices, dtype=np.int64)
    for level in range(config.max_levels):
        state = ClusterState.singletons(current)
        stats = run_best_moves(current, state, resolution, config, rng=rng)
        if stats.total_moves == 0 and level > 0:
            break
        compressed, vertex_to_super = compress_graph(current, state.assignments)
        flat = vertex_to_super[to_original]
        _, dense = np.unique(flat, return_inverse=True)
        dense = dense.astype(np.int64)
        hierarchy.levels.append(
            HierarchyLevel(
                level=level,
                assignments=dense,
                num_clusters=int(dense.max()) + 1,
                objective=lambdacc_objective(working, dense, resolution),
            )
        )
        if compressed.num_vertices == current.num_vertices:
            break
        to_original = vertex_to_super[to_original]
        current = compressed
    if not hierarchy.levels:
        identity = np.arange(graph.num_vertices, dtype=np.int64)
        hierarchy.levels.append(
            HierarchyLevel(0, identity, graph.num_vertices, 0.0)
        )
    return hierarchy
