"""BEST-MOVES: the inner loop of Algorithm 1.

Repeatedly (up to ``num_iter`` times, for convergence is not guaranteed
under concurrent moves) lets every frontier vertex move to the cluster
maximizing its own objective.  Scheduling of the moves follows
Section 3.2.1:

* **synchronous** — the whole frontier computes desired clusters against
  one snapshot, then all moves apply in lockstep.  No symmetry breaking:
  mutually attracted vertices can jointly land in a bad cluster (Figure 1),
  which is why this setting often yields negative CC objectives.
* **asynchronous** — the (shuffled) frontier is processed in *concurrency
  windows* of roughly the worker count; within a window all vertices read
  the window-start state (the stale reads real concurrent threads see) and
  moves apply atomically between windows, with CAS contention charged per
  window.  Randomized window membership provides the symmetry breaking the
  paper credits for the asynchronous setting's quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import ClusteringConfig, Mode
from repro.core.frontier import next_frontier
from repro.core.moves import compute_batch_moves, kernel_depth
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import instr_of


@dataclass
class BestMovesStats:
    """Diagnostics from one BEST-MOVES invocation."""

    iterations: int = 0
    total_moves: int = 0
    #: |V'| at the start of each iteration (Figure 11's series).
    frontier_sizes: List[int] = field(default_factory=list)
    converged: bool = False


def _windows(
    order: np.ndarray, config: ClusteringConfig
) -> List[np.ndarray]:
    """Split an iteration's frontier into concurrency windows.

    Synchronous mode is a single window (one snapshot for everyone).
    Asynchronous mode uses ``async_windows`` windows regardless of
    frontier size: on small frontiers windows degenerate to single
    vertices — matching true asynchrony, where memory updates become
    visible at far finer granularity than the frontier — while on large
    frontiers the window is the staleness horizon within which concurrent
    threads read each other's pre-move state (DESIGN.md §2).
    """
    if config.mode is Mode.SYNC:
        return [order]
    num_windows = max(1, min(config.async_windows, order.size))
    return np.array_split(order, num_windows)


def run_best_moves(
    graph: CSRGraph,
    state: ClusterState,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    initial_frontier: Optional[np.ndarray] = None,
) -> BestMovesStats:
    """Run BEST-MOVES in place on ``state``; returns iteration diagnostics."""
    stats = BestMovesStats()
    obs = instr_of(sched)
    n = graph.num_vertices
    active = (
        np.arange(n, dtype=np.int64)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=np.int64)
    )
    for _ in range(config.iteration_bound):
        if active.size == 0:
            stats.converged = True
            break
        frontier_size = int(active.size)
        stats.frontier_sizes.append(frontier_size)
        with obs.span(
            "round", engine="relaxed", iteration=stats.iterations,
            frontier=frontier_size,
        ) as round_span:
            order = rng.permutation(active) if rng is not None else active
            movers_parts: List[np.ndarray] = []
            origins_parts: List[np.ndarray] = []
            targets_parts: List[np.ndarray] = []
            round_gain = 0.0
            # Asynchronous windows run back to back with no barrier, so the
            # per-window kernels charge work only; one critical-path term per
            # iteration is charged below.  Synchronous mode has exactly one
            # window, whose depth is that term.
            sync = config.mode is Mode.SYNC
            for window in _windows(order, config):
                targets, gains = compute_batch_moves(
                    graph,
                    state,
                    window,
                    resolution,
                    sched=sched,
                    kernel_threshold=config.kernel_threshold,
                    charge_depth=sync,
                    allow_escape=config.escape_moves,
                    swap_avoidance=sync,
                    kernel=config.kernel,
                )
                moving = targets != state.assignments[window]
                if moving.any():
                    movers_parts.append(window[moving])
                    origins_parts.append(state.assignments[window[moving]])
                    targets_parts.append(targets[moving])
                    round_gain += float(gains[moving].sum())
                state.apply_moves(window, targets, sched=sched)
            if sched is not None and not sync:
                degrees = graph.offsets[active + 1] - graph.offsets[active]
                sched.charge(
                    work=0.0,
                    depth=kernel_depth(degrees, config.kernel_threshold)
                    + 2.0 * math.log2(max(graph.num_vertices, 2)),
                    label="best-moves-iter",
                )
            stats.iterations += 1
            round_moves = (
                int(sum(part.size for part in movers_parts))
                if movers_parts
                else 0
            )
            round_span.set(moves=round_moves, gain=round_gain)
            obs.record_round("relaxed", frontier_size, round_moves, round_gain)
            if not movers_parts:
                stats.converged = True
                break
            movers = np.concatenate(movers_parts)
            stats.total_moves += int(movers.size)
            active = next_frontier(
                graph,
                state.assignments,
                movers,
                np.concatenate(origins_parts),
                np.concatenate(targets_parts),
                config.frontier,
                sched=sched,
            )
            if sched is not None:
                # Round boundary: every worker feeds the next frontier, so
                # the simulated lanes join here (recording idle waits).
                sched.round_barrier()
    return stats
