"""Frontier maintenance for BEST-MOVES (Section 3.2.2, Figure 11).

After an iteration in which vertices moved, only three categories of
vertices can be induced to move next (the paper's change-in-objective
argument): (a) neighbors of a moved vertex, (b) neighbors of vertices in a
mover's origin cluster, (c) members of a mover's destination cluster.  The
three :class:`~repro.core.config.Frontier` options trade work against
(rarely realized) objective coverage:

* ``ALL``               — everything, every iteration (no optimization);
* ``VERTEX_NEIGHBORS``  — category (a) only (the paper's best setting);
* ``CLUSTER_NEIGHBORS`` — members and neighbors of all affected clusters
  (covers (b) and (c); a superset of (a) restricted to affected clusters).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import Frontier
from repro.graphs.csr import CSRGraph
from repro.parallel.edge_map import edge_map
from repro.parallel.vertex_subset import VertexSubset


def next_frontier(
    graph: CSRGraph,
    assignments: np.ndarray,
    movers: np.ndarray,
    origin_clusters: np.ndarray,
    target_clusters: np.ndarray,
    kind: Frontier,
    sched=None,
) -> np.ndarray:
    """Vertex ids to consider in the next BEST-MOVES iteration."""
    n = graph.num_vertices
    if movers.size == 0:
        return _inject_delay(np.zeros(0, dtype=np.int64), sched)
    if kind is Frontier.ALL:
        if sched is not None:
            sched.charge(work=float(n), depth=1.0, label="frontier-all")
        return _inject_delay(np.arange(n, dtype=np.int64), sched)
    if kind is Frontier.VERTEX_NEIGHBORS:
        subset = VertexSubset.from_ids(n, movers, sched=sched)
        frontier = edge_map(graph, subset, sched=sched, label="frontier-vnbrs").ids()
        return _inject_delay(frontier, sched)
    if kind is Frontier.CLUSTER_NEIGHBORS:
        affected = np.union1d(origin_clusters, target_clusters)
        members = np.flatnonzero(np.isin(assignments, affected)).astype(np.int64)
        if sched is not None:
            sched.charge(work=float(n), depth=1.0, label="frontier-cnbrs-members")
        subset = VertexSubset.from_ids(n, members, sched=sched)
        neighbors = edge_map(graph, subset, sched=sched, label="frontier-cnbrs")
        return _inject_delay(neighbors.union(subset).ids(), sched)
    raise ValueError(f"unknown frontier kind: {kind!r}")


def seed_frontier(
    graph: CSRGraph,
    touched: np.ndarray,
    sched=None,
    include_neighbors: bool = False,
) -> np.ndarray:
    """Initial frontier for localized refinement (dynamic updates).

    The endpoints of updated edges are the only vertices whose move
    landscape changed (DESIGN.md §11's delta algebra: edge updates alter
    neither ``k_v`` nor any ``K_c``), so the restricted engine run seeds
    from exactly these vertices; the engine's own ``next_frontier`` then
    cascades outward as moves happen.  ``include_neighbors=True`` widens
    the seed by one hop — useful when the caller wants the first round to
    already cover category (a) of the frontier argument above.
    """
    n = graph.num_vertices
    touched = np.unique(np.asarray(touched, dtype=np.int64))
    if touched.size and (touched[0] < 0 or touched[-1] >= n):
        raise ValueError(f"touched vertex ids must lie in [0, {n})")
    if not include_neighbors:
        if sched is not None:
            sched.charge(
                work=float(max(touched.size, 1)), depth=1.0, label="frontier-seed"
            )
        return _inject_delay(touched, sched)
    subset = VertexSubset.from_ids(n, touched, sched=sched)
    neighbors = edge_map(graph, subset, sched=sched, label="frontier-seed")
    return _inject_delay(neighbors.union(subset).ids(), sched)


def _inject_delay(frontier: np.ndarray, sched) -> np.ndarray:
    """Apply injected frontier-update delays (resilience fault plans)."""
    faults = getattr(sched, "faults", None) if sched is not None else None
    if faults is None:
        return frontier
    return faults.delay_frontier(frontier)
