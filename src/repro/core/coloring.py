"""Coloring-based conflict-free parallel Louvain (Grappolo-style).

The paper's reference [27] (Lu, Halappanavar, Kalyanaraman — the basis of
Grappolo) parallelizes Louvain differently from both the synchronous and
asynchronous settings: compute a distance-1 vertex coloring, then process
color classes one after another, all vertices *within* a class in
parallel.  Same-colored vertices are pairwise non-adjacent, so their
concurrent moves never read each other's stale neighborhoods — a
middle ground between full lockstep (conflicts) and full asynchrony
(no guarantees):

* within a color class, a lockstep window is safe for *adjacency*
  conflicts but still shares cluster-weight state;
* across classes, moves are visible immediately (asynchronous flavor).

Implemented here as a third scheduling engine with the greedy parallel
coloring charged to the ledger; the ablation bench compares it to the
paper's chosen asynchronous setting (the paper's own finding: "our
asynchronous setting outperforms methods that maintain consistency
guarantees in quality and speed").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.best_moves import BestMovesStats
from repro.core.config import ClusteringConfig
from repro.core.frontier import next_frontier
from repro.core.moves import compute_batch_moves
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import instr_of


def greedy_coloring(graph: CSRGraph, sched=None) -> np.ndarray:
    """Distance-1 greedy coloring (first-fit in vertex order).

    Returns a color per vertex; adjacent vertices always differ.  Uses at
    most ``max_degree + 1`` colors.  Charged as the parallel
    speculation-and-repair coloring Grappolo uses: work O(m), depth
    O(log n) per round, a handful of rounds.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        nbrs = graph.neighbors[graph.offsets[v]: graph.offsets[v + 1]]
        used = set(colors[nbrs].tolist())
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    if sched is not None:
        sched.charge(
            work=float(graph.num_directed_edges + n),
            depth=np.log2(max(n, 2)) * 4.0,
            label="coloring",
        )
    return colors


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """Check no edge connects same-colored endpoints."""
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.offsets)
    )
    return not bool(np.any(colors[src] == colors[graph.neighbors]))


def run_colored_best_moves(
    graph: CSRGraph,
    state: ClusterState,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    initial_frontier: Optional[np.ndarray] = None,
    colors: Optional[np.ndarray] = None,
) -> BestMovesStats:
    """BEST-MOVES scheduled by color classes (Grappolo-style).

    ``colors`` may be precomputed (the multilevel driver recolors each
    coarsened graph).
    """
    stats = BestMovesStats()
    obs = instr_of(sched)
    n = graph.num_vertices
    if colors is None:
        colors = greedy_coloring(graph, sched=sched)
    num_colors = int(colors.max()) + 1 if colors.size else 0
    active = (
        np.arange(n, dtype=np.int64)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=np.int64)
    )
    for _ in range(config.iteration_bound):
        if active.size == 0:
            stats.converged = True
            break
        frontier_size = int(active.size)
        stats.frontier_sizes.append(frontier_size)
        with obs.span(
            "round", engine="colored", iteration=stats.iterations,
            frontier=frontier_size,
        ) as round_span:
            order = rng.permutation(active) if rng is not None else active
            movers_parts: List[np.ndarray] = []
            origins_parts: List[np.ndarray] = []
            targets_parts: List[np.ndarray] = []
            round_gain = 0.0
            active_colors = colors[order]
            for color in range(num_colors):
                window = order[active_colors == color]
                if window.size == 0:
                    continue
                targets, gains = compute_batch_moves(
                    graph,
                    state,
                    window,
                    resolution,
                    sched=sched,
                    kernel_threshold=config.kernel_threshold,
                    charge_depth=True,  # each color class is a barrier
                    allow_escape=config.escape_moves,
                    kernel=config.kernel,
                )
                moving = targets != state.assignments[window]
                if moving.any():
                    movers_parts.append(window[moving])
                    origins_parts.append(state.assignments[window[moving]])
                    targets_parts.append(targets[moving])
                    round_gain += float(gains[moving].sum())
                state.apply_moves(window, targets, sched=sched)
            stats.iterations += 1
            round_moves = (
                int(sum(part.size for part in movers_parts))
                if movers_parts
                else 0
            )
            round_span.set(moves=round_moves, gain=round_gain)
            obs.record_round("colored", frontier_size, round_moves, round_gain)
            if not movers_parts:
                stats.converged = True
                break
            movers = np.concatenate(movers_parts)
            stats.total_moves += int(movers.size)
            active = next_frontier(
                graph, state.assignments, movers,
                np.concatenate(origins_parts), np.concatenate(targets_parts),
                config.frontier, sched=sched,
            )
            if sched is not None:
                # Color classes already barrier individually; the round
                # itself joins once more before the next frontier.
                sched.round_barrier()
    return stats
