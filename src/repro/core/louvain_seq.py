"""SEQUENTIAL-CC: the classic sequential Louvain method (Algorithm 2).

Vertices are visited one at a time in a fresh random permutation per sweep
and moved immediately to their best cluster; sweeps repeat until the
objective stops improving (no vertex moves), bounded by ``num_iter`` unless
running to convergence (the ``^CON`` variants).  Following Section 4.2, the
sequential baselines include the applicable Section 3.2 optimizations:
frontier restriction (sweeping only over V') and multi-level refinement —
both supplied by the shared multi-level driver.

Costs are charged to the ledger as pure sequential work (a one-worker
run's simulated time is its total work), so PAR-over-SEQ speedups compare
like with like.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.best_moves import BestMovesStats
from repro.core.config import ClusteringConfig
from repro.core.frontier import next_frontier
from repro.core.louvain_par import MultiLevelStats, multilevel_louvain
from repro.core.state import ClusterState
from repro.kernels import DEFAULT_KERNEL, get_kernel
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import MemoryTracker
from repro.obs.instrument import instr_of


def _sequential_sweep(
    graph: CSRGraph,
    state: ClusterState,
    order: np.ndarray,
    resolution: float,
    sched=None,
    allow_escape: bool = True,
    kernel: str = DEFAULT_KERNEL,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One sweep of immediate best moves.

    Evaluation (and the exact sequence of ``move_one`` state mutations)
    is delegated to the selected kernel's ``sweep`` — the dict
    vertex-at-a-time loop or the speculative batched replay, which are
    bit-identical (DESIGN.md §8).  The sweep's simulated cost is charged
    here, identically for every kernel: pure sequential work, so a
    one-worker run's simulated time is its total work.

    Returns ``(movers, origins, targets, total_gain)``.
    """
    movers, origins, targets, total_gain = get_kernel(kernel).sweep(
        graph,
        state,
        order,
        resolution,
        allow_escape=allow_escape,
        instr=getattr(sched, "instr", None),
    )
    if sched is not None:
        degrees = graph.offsets[order + 1] - graph.offsets[order]
        work = float(degrees.sum()) + 4.0 * order.size
        sched.charge(work=work, depth=work, label="seq-sweep")
    return movers, origins, targets, total_gain


def sequential_best_moves(
    graph: CSRGraph,
    state: ClusterState,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    initial_frontier: Optional[np.ndarray] = None,
) -> BestMovesStats:
    """Sequential analogue of BEST-MOVES: sweeps until stable or bounded."""
    stats = BestMovesStats()
    obs = instr_of(sched)
    n = graph.num_vertices
    active = (
        np.arange(n, dtype=np.int64)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=np.int64)
    )
    for _ in range(config.iteration_bound):
        if active.size == 0:
            stats.converged = True
            break
        frontier_size = int(active.size)
        stats.frontier_sizes.append(frontier_size)
        with obs.span(
            "round", engine="sequential", iteration=stats.iterations,
            frontier=frontier_size,
        ) as round_span:
            order = rng.permutation(active) if rng is not None else active
            movers, origins, targets, gain = _sequential_sweep(
                graph, state, order, resolution, sched=sched,
                allow_escape=config.escape_moves, kernel=config.kernel,
            )
            stats.iterations += 1
            round_span.set(moves=int(movers.size), gain=gain)
            obs.record_round(
                "sequential", frontier_size, int(movers.size), gain
            )
            if movers.size == 0:
                stats.converged = True
                break
            stats.total_moves += int(movers.size)
            active = next_frontier(
                graph, state.assignments, movers, origins, targets,
                config.frontier, sched=sched,
            )
            if sched is not None:
                # One lane, but the boundary still closes the round's
                # chunk stream so timelines segment per sweep.
                sched.round_barrier()
    return stats


def sequential_cc(
    graph: CSRGraph,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    memory: Optional[MemoryTracker] = None,
    resilience=None,
) -> Tuple[np.ndarray, MultiLevelStats]:
    """Multi-level SEQUENTIAL-CC; same contract as
    :func:`repro.core.louvain_par.parallel_cc`."""
    return multilevel_louvain(
        graph,
        resolution,
        config,
        sequential_best_moves,
        sched=sched,
        rng=rng,
        memory=memory,
        resilience=resilience,
    )
