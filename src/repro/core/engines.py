"""Registry of BEST-MOVES scheduling engines.

Five engines implement the same contract
``engine(graph, state, resolution, config, sched=, rng=, initial_frontier=)``:

* ``"relaxed"``  — the paper's engine: batched windows, synchronous or
  asynchronous per ``config.mode`` (:mod:`repro.core.best_moves`);
* ``"prefix"``   — the conflict-free-prefix alternative §3.2 rejects
  (:mod:`repro.core.prefix`);
* ``"colored"``  — Grappolo-style color-class scheduling, reference [27]
  (:mod:`repro.core.coloring`);
* ``"event"``    — the fine-grained event-driven asynchrony oracle
  (:mod:`repro.core.event_async`);
* ``"sequential"`` — Algorithm 2's per-vertex sweeps
  (:mod:`repro.core.louvain_seq`).

:func:`multilevel_with_engine` runs the full multilevel pipeline with any
of them, which is how the engine-comparison bench produces one table over
all scheduling disciplines.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.coloring import run_colored_best_moves
from repro.core.config import ClusteringConfig
from repro.core.event_async import run_event_driven_best_moves
from repro.core.louvain_par import MultiLevelStats, multilevel_louvain
from repro.core.louvain_seq import sequential_best_moves
from repro.core.prefix import run_prefix_best_moves
from repro.graphs.csr import CSRGraph
from repro.graphs.stats import MemoryTracker

ENGINES: Dict[str, Callable] = {
    "relaxed": run_best_moves,
    "prefix": run_prefix_best_moves,
    "colored": run_colored_best_moves,
    "event": run_event_driven_best_moves,
    "sequential": sequential_best_moves,
}

#: The supervisor's last-resort engine: Algorithm 2's sequential sweeps
#: have no windows, no atomics, and no speculative conflicts to go wrong.
FALLBACK_ENGINE = "sequential"


def fallback_engine(name: Optional[str]) -> Optional[str]:
    """The engine to fall back to, or ``None`` if already at the bottom."""
    if name == FALLBACK_ENGINE:
        return None
    return FALLBACK_ENGINE


def get_engine(name: str) -> Callable:
    """Look up an engine by name."""
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None


def run_engine_restricted(
    graph: CSRGraph,
    state,
    resolution: float,
    config: ClusteringConfig,
    engine: Optional[str] = None,
    frontier: Optional[np.ndarray] = None,
    sched=None,
    rng: Optional[np.random.Generator] = None,
):
    """One single-level BEST-MOVES run restricted to a seed ``frontier``.

    The dynamic subsystem's localized-refinement entry point: no
    coarsening, no singleton reset — the named engine runs *in place* on
    the provided :class:`~repro.core.state.ClusterState`, with its first
    iteration limited to ``frontier`` (subsequent iterations cascade via
    the engine's own frontier maintenance).  ``frontier=None`` falls back
    to the engine default (all vertices), which is exactly a full
    single-level recompute from the current partition — the comparison
    baseline the dynamic bench uses.

    Returns the engine's :class:`~repro.core.best_moves.BestMovesStats`.
    """
    name = engine if engine is not None else (
        "relaxed" if config.parallel else "sequential"
    )
    fn = get_engine(name)
    return fn(
        graph,
        state,
        resolution,
        config,
        sched=sched,
        rng=rng,
        initial_frontier=frontier,
    )


def multilevel_with_engine(
    graph: CSRGraph,
    resolution: float,
    config: ClusteringConfig,
    engine: str = "relaxed",
    sched=None,
    rng: Optional[np.random.Generator] = None,
    memory: Optional[MemoryTracker] = None,
    resilience=None,
) -> Tuple[np.ndarray, MultiLevelStats]:
    """Run the full multilevel Louvain pipeline under the named engine.

    ``resilience`` accepts a
    :class:`~repro.resilience.context.ResilienceContext`, making every
    engine in the registry runnable under fault injection, auditing,
    budget guards, and checkpointing — the fault-matrix suite's entry
    point.
    """
    return multilevel_louvain(
        graph,
        resolution,
        config,
        get_engine(engine),
        sched=sched,
        rng=rng,
        memory=memory,
        resilience=resilience,
    )
