"""Clustering result record.

Bundles the clustering itself with everything the paper's evaluation
reports: the CC objective / modularity, round counts (Figure 5), the
simulated-cost ledger (Figures 4, 6, 7, 12, 13, 17), peak memory
(Figure 8), and the frontier-size history (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import ClusteringConfig
from repro.core.louvain_par import MultiLevelStats
from repro.parallel.scheduler import CostLedger, Machine


@dataclass
class ClusterResult:
    """Output of :func:`repro.core.api.cluster`."""

    #: Dense cluster label per vertex (labels in ``[0, num_clusters)``).
    assignments: np.ndarray
    #: The paper's CC objective (ordered-pair scale, ``2 F``) at the
    #: effective lambda.
    objective: float
    #: The unordered LambdaCC objective ``F`` (see repro.core.objective).
    f_objective: float
    #: Reichardt–Bornholdt modularity of the clustering (always computed;
    #: the optimization target only under Objective.MODULARITY).
    modularity: float
    #: The resolution as configured (lambda for CC, gamma for modularity).
    resolution: float
    #: The LambdaCC lambda actually optimized (== resolution for CC).
    effective_lambda: float
    config: ClusteringConfig
    stats: MultiLevelStats
    ledger: CostLedger
    machine: Machine
    #: Peak graph bytes retained by the algorithm (this implementation's
    #: arrays, not the paper's 8-bytes-per-edge convention).
    peak_memory_bytes: int
    #: The input graph's bytes under the same accounting.
    input_bytes: int
    wall_seconds: float
    seed: Optional[int] = None
    #: True when the run degraded gracefully instead of completing cleanly
    #: (budget exhausted, transient-fault retries exhausted, or an audit
    #: had to repair corrupted aggregates); see ``failure_log`` for why.
    degraded: bool = False
    #: Human-readable log of faults survived, repairs, retries, and budget
    #: stops (empty for a clean run).
    failure_log: List[str] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return int(self.assignments.max()) + 1 if self.assignments.size else 0

    @property
    def rounds(self) -> int:
        """Total best-move iterations across levels (Figure 5's count)."""
        return self.stats.total_iterations

    @property
    def num_levels(self) -> int:
        return self.stats.num_levels

    @property
    def memory_overhead(self) -> float:
        """Peak retained bytes over input bytes (Figure 8's ratio)."""
        return self.peak_memory_bytes / max(1, self.input_bytes)

    def clusters(self) -> List[np.ndarray]:
        """Member arrays per cluster, ordered by cluster label."""
        order = np.argsort(self.assignments, kind="stable")
        labels = self.assignments[order]
        boundaries = np.flatnonzero(np.diff(labels)) + 1
        return np.split(order, boundaries)

    def stats_dict(self) -> dict:
        """Structured run summary: rounds, moves, per-level timings.

        The same numbers the trace's ``run``/``level`` spans carry
        (``tests/obs`` asserts the two agree), in a JSON-ready dict for
        benches and reports.
        """
        summary = self.stats.as_dict()
        # Disambiguate: the stats total is instrumented per-level time; the
        # result's wall_seconds is the whole driver invocation.
        summary["levels_wall_seconds"] = summary.pop("wall_seconds")
        summary.update(
            num_clusters=self.num_clusters,
            objective=self.objective,
            f_objective=self.f_objective,
            modularity=self.modularity,
            wall_seconds=self.wall_seconds,
            sim_time_seconds=self.sim_time(),
            degraded=self.degraded,
        )
        # Surface input repairs and supervision decisions when present so
        # bench/report consumers see them without digging into extras.
        for key in ("input_repairs", "supervisor"):
            if key in self.extras:
                summary[key] = self.extras[key]
        return summary

    def sim_time(self, num_workers: Optional[int] = None) -> float:
        """Simulated seconds at ``num_workers`` (default: as scheduled).

        ``resolved_workers`` rather than the raw ``num_workers`` so that
        auto-sized runs (``num_workers=0``) report the worker count the
        scheduler actually ran with.
        """
        workers = num_workers if num_workers is not None else (
            self.config.resolved_workers if self.config.parallel else 1
        )
        return self.ledger.simulated_time(workers, machine=self.machine)

    def summary(self) -> str:
        """One-line human-readable summary."""
        tail = ", DEGRADED" if self.degraded else ""
        return (
            f"{self.config.describe()} resolution={self.resolution:g}: "
            f"{self.num_clusters} clusters, objective={self.objective:.6g}, "
            f"modularity={self.modularity:.4f}, rounds={self.rounds}, "
            f"sim_time={self.sim_time():.4g}s, wall={self.wall_seconds:.3f}s{tail}"
        )
