"""Multi-level Louvain drivers: PARALLEL-CC and the shared recursion.

Structure (matching the paper's Algorithm 1, implemented iteratively):

1. run BEST-MOVES from singletons on the current graph;
2. if no vertex moved, stop — the current clustering is final;
3. otherwise PARALLEL-COMPRESS the clustering into a coarser graph and
   repeat;
4. unwind: PARALLEL-FLATTEN each level's clustering through the
   vertex-to-supervertex maps and, with multi-level refinement enabled,
   run one more BEST-MOVES pass per level (Section 3.2.3).

The same driver runs SEQUENTIAL-CC by swapping in the sequential
best-moves routine (Section 4.2: the sequential baselines share the
frontier-restriction and refinement optimizations).

Memory accounting mirrors the paper's Figure 8 discussion: refinement
retains every intermediate coarsened graph until its refinement pass runs,
whereas without refinement each level is released as soon as it has been
compressed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.best_moves import run_best_moves
from repro.core.config import ClusteringConfig
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.graphs.quotient import compress_graph
from repro.graphs.stats import MemoryTracker
from repro.obs.instrument import M_COMPRESSION, M_LEVEL_SECONDS, instr_of


@dataclass
class LevelStats:
    """Per-coarsening-level diagnostics."""

    num_vertices: int
    num_edges: int
    iterations: int
    moves: int
    frontier_sizes: List[int] = field(default_factory=list)
    refine_iterations: int = 0
    refine_moves: int = 0
    #: Wall seconds of the downward pass at this level (best-moves +
    #: compression); 0.0 for levels restored from a checkpoint.
    wall_seconds: float = 0.0
    #: Wall seconds of this level's refinement pass on the unwind.
    refine_wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Structured summary (what benches and tests assert on)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "iterations": self.iterations,
            "moves": self.moves,
            "frontier_sizes": [int(x) for x in self.frontier_sizes],
            "refine_iterations": self.refine_iterations,
            "refine_moves": self.refine_moves,
            "wall_seconds": self.wall_seconds,
            "refine_wall_seconds": self.refine_wall_seconds,
        }


@dataclass
class MultiLevelStats:
    """Diagnostics across the whole multi-level run."""

    levels: List[LevelStats] = field(default_factory=list)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def total_iterations(self) -> int:
        """Total BEST-MOVES iterations (the paper's round count, Figure 5)."""
        return sum(l.iterations + l.refine_iterations for l in self.levels)

    @property
    def total_moves(self) -> int:
        return sum(l.moves + l.refine_moves for l in self.levels)

    @property
    def total_wall_seconds(self) -> float:
        """Instrumented wall seconds across all levels (both passes)."""
        return sum(l.wall_seconds + l.refine_wall_seconds for l in self.levels)

    def as_dict(self) -> dict:
        """Structured summary (what benches and tests assert on)."""
        return {
            "num_levels": self.num_levels,
            "rounds": self.total_iterations,
            "moves": self.total_moves,
            "wall_seconds": self.total_wall_seconds,
            "levels": [level.as_dict() for level in self.levels],
        }


def parallel_flatten(
    deeper_assignments: np.ndarray, vertex_to_super: np.ndarray, sched=None
) -> np.ndarray:
    """PARALLEL-FLATTEN: compose a coarse clustering onto the finer level.

    ``vertex_to_super[v]`` maps fine vertex ``v`` to its supervertex; the
    result assigns ``v`` the supervertex's cluster.  O(n) work, O(log n)
    depth (a parallel gather).
    """
    flattened = np.asarray(deeper_assignments, dtype=np.int64)[vertex_to_super]
    if sched is not None:
        n = vertex_to_super.size
        sched.charge(
            work=float(n), depth=max(1.0, math.log2(max(n, 2))), label="flatten"
        )
    return flattened


#: Signature shared by the parallel and sequential best-moves engines.
BestMovesFn = Callable[..., "object"]


def multilevel_louvain(
    graph: CSRGraph,
    resolution: float,
    config: ClusteringConfig,
    best_moves_fn: BestMovesFn,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    memory: Optional[MemoryTracker] = None,
    compress_fn=compress_graph,
    resilience=None,
) -> Tuple[np.ndarray, MultiLevelStats]:
    """Run the multi-level Louvain recursion with the given move engine.

    ``compress_fn`` selects the compression cost model (the NetworKit-style
    PLM baseline swaps in the non-work-efficient variant).  Returns
    ``(assignments, stats)``; assignments use arbitrary cluster ids in
    ``[0, n)`` (densify via :func:`numpy.unique` for presentation).

    ``resilience`` is an optional
    :class:`~repro.resilience.context.ResilienceContext`: engine calls then
    run under retry/backoff and invariant auditing, budget guards can stop
    the recursion early (the best-so-far clustering is flattened and
    returned instead of crashing), and level boundaries are
    checkpointed/resumable (see DESIGN.md, "Resilience & failure model").
    """
    ctx = resilience
    obs = instr_of(sched)
    stats = MultiLevelStats()
    memory = memory if memory is not None else MemoryTracker()
    retained: List[Tuple[CSRGraph, np.ndarray]] = []  # (level graph, v2s)
    current = graph
    level = 0
    if ctx is not None:
        ctx.bind(graph, resolution, config)
        resumed = ctx.load_resume(rng)
        if resumed is not None:
            level = resumed.level
            current = resumed.current
            retained = list(resumed.retained)
            stats = resumed.stats
            if config.refine:
                for idx, (level_graph, _) in enumerate(retained):
                    memory.hold(idx, level_graph)
            elif retained:
                memory.hold(0, retained[0][0])
    memory.hold(level, current)
    base_assignments: Optional[np.ndarray] = None

    def run_engine(level_graph: CSRGraph, state: ClusterState, where: str):
        if ctx is None:
            return best_moves_fn(
                level_graph, state, resolution, config, sched=sched, rng=rng
            )
        return ctx.run_engine(
            best_moves_fn,
            level_graph,
            state,
            resolution,
            config,
            sched=sched,
            rng=rng,
            where=where,
        )

    while level < config.max_levels:
        level_index = len(stats.levels)
        level_t0 = time.perf_counter()
        with obs.span(
            "level",
            level=level,
            vertices=current.num_vertices,
            edges=current.num_edges,
        ) as level_span:
            try:
                state = ClusterState.singletons(current)
                if ctx is not None:
                    state = ctx.wrap_state(state)
                with obs.span("phase", phase="best-moves", level=level):
                    bm = run_engine(
                        current, state, f"best-moves[level {level}]"
                    )
                if bm is None:
                    # Engine degraded (transient-fault retries exhausted):
                    # accept whatever partial clustering this level reached.
                    stats.levels.append(
                        LevelStats(
                            num_vertices=current.num_vertices,
                            num_edges=current.num_edges,
                            iterations=0,
                            moves=0,
                        )
                    )
                    level_span.set(degraded=True)
                    base_assignments = state.assignments
                    break
                stats.levels.append(
                    LevelStats(
                        num_vertices=current.num_vertices,
                        num_edges=current.num_edges,
                        iterations=bm.iterations,
                        moves=bm.total_moves,
                        frontier_sizes=bm.frontier_sizes,
                    )
                )
                level_span.set(
                    iterations=bm.iterations, moves=bm.total_moves
                )
                if bm.total_moves == 0:
                    base_assignments = np.arange(
                        current.num_vertices, dtype=np.int64
                    )
                    break
                if ctx is not None and ctx.budget_stop(
                    stats.total_moves, stats.total_iterations
                ):
                    base_assignments = state.assignments
                    break
                with obs.span("phase", phase="compress", level=level):
                    compressed, vertex_to_super = compress_fn(
                        current, state.assignments, sched=sched
                    )
                ratio = compressed.num_vertices / max(current.num_vertices, 1)
                obs.observe(M_COMPRESSION, ratio)
                level_span.set(compression_ratio=ratio)
                if compressed.num_vertices == current.num_vertices:
                    # Coarsening made no progress (e.g. pure swaps): accept
                    # the clustering at this level and stop recursing.
                    base_assignments = vertex_to_super
                    break
                retained.append((current, vertex_to_super))
                if not config.refine and level > 0:
                    # Without refinement intermediate graphs are discarded as
                    # soon as they are compressed (only their v2s map is
                    # needed).
                    memory.release(level)
                level += 1
                memory.hold(level, compressed)
                current = compressed
                if ctx is not None:
                    ctx.maybe_checkpoint(
                        level, current, retained, stats, rng=rng
                    )
            finally:
                elapsed = time.perf_counter() - level_t0
                if level_index < len(stats.levels):
                    stats.levels[level_index].wall_seconds += elapsed
                obs.observe(M_LEVEL_SECONDS, elapsed)
    else:
        base_assignments = np.arange(current.num_vertices, dtype=np.int64)

    assert base_assignments is not None
    assignments = base_assignments
    for idx in range(len(retained) - 1, -1, -1):
        level_graph, vertex_to_super = retained[idx]
        with obs.span("phase", phase="flatten", level=idx):
            assignments = parallel_flatten(
                assignments, vertex_to_super, sched=sched
            )
        if config.refine and not (ctx is not None and ctx.stopped):
            refine_t0 = time.perf_counter()
            with obs.span(
                "phase",
                phase="refine",
                level=idx,
                vertices=level_graph.num_vertices,
            ) as refine_span:
                state = ClusterState.from_assignments(level_graph, assignments)
                if ctx is not None:
                    state = ctx.wrap_state(state)
                refine_bm = run_engine(
                    level_graph, state, f"refine[level {idx}]"
                )
                if refine_bm is not None:
                    stats.levels[idx].refine_iterations = refine_bm.iterations
                    stats.levels[idx].refine_moves = refine_bm.total_moves
                    refine_span.set(
                        iterations=refine_bm.iterations,
                        moves=refine_bm.total_moves,
                    )
                assignments = state.assignments
                memory.release(idx + 1)
                if ctx is not None:
                    ctx.budget_stop(stats.total_moves, stats.total_iterations)
            stats.levels[idx].refine_wall_seconds += (
                time.perf_counter() - refine_t0
            )
    return assignments, stats


def parallel_cc(
    graph: CSRGraph,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    memory: Optional[MemoryTracker] = None,
    resilience=None,
) -> Tuple[np.ndarray, MultiLevelStats]:
    """PARALLEL-CC (Algorithm 1) under LambdaCC resolution ``resolution``."""
    return multilevel_louvain(
        graph,
        resolution,
        config,
        run_best_moves,
        sched=sched,
        rng=rng,
        memory=memory,
        resilience=resilience,
    )
