"""Event-driven fine-grained asynchrony (validation engine).

The production engine models asynchronous execution with batched
concurrency windows (DESIGN.md §2).  This module implements the *ground
truth* that approximation stands in for: a discrete-event simulation of
``P`` workers processing vertices from a shared queue, where each
vertex's best-move computation

* **starts** at some simulated time, reading the shared state as of that
  instant (cluster assignments and weights), and
* **commits** at start + duration (duration proportional to the vertex's
  degree), applying its move against whatever the state has become —
  exactly the stale-read/atomic-commit semantics of the paper's
  lock-free implementation (Section 3.2.1).

Being a Python event loop it is far slower in wall-clock than the
batched engine, so it serves as a *validation oracle*: the ablation
bench ``bench_ablation_event.py`` shows the batched engine matches its
objective, which is the empirical justification for the window model.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.core.best_moves import BestMovesStats
from repro.core.config import ClusteringConfig
from repro.core.frontier import next_frontier
from repro.core.state import ClusterState
from repro.kernels import DEFAULT_KERNEL, get_kernel
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import instr_of


def _event_iteration(
    graph: CSRGraph,
    state: ClusterState,
    order: np.ndarray,
    resolution: float,
    num_workers: int,
    allow_escape: bool,
    kernel: str = DEFAULT_KERNEL,
) -> tuple:
    """One pass over ``order`` with P concurrent workers.

    Returns (movers, origins, targets).  Commit-time conflict rule: the
    move applies only if the vertex's cluster is unchanged since its read
    (a failed CAS re-queues the vertex once, as real implementations
    retry).

    Evaluation binds to the kernel layer's single-vertex entry point:
    the oracle commits one vertex at a time, so both kernels resolve to
    the dict path here (see ``VectorizedKernel.single_move``) and the
    results are kernel-independent by construction.
    """
    single_move = get_kernel(kernel).single_move
    # Event heap holds (finish_time, sequence, vertex, read_assignment,
    # target, gain).  Workers pick up the next queued vertex when they
    # finish.
    degrees = graph.offsets[order + 1] - graph.offsets[order]
    durations = 1.0 + degrees.astype(np.float64)
    queue_position = 0
    sequence = 0
    heap: List[tuple] = []
    movers: List[int] = []
    origins: List[int] = []
    targets_out: List[int] = []
    total_gain = 0.0
    retried = set()

    def start_task(now: float) -> None:
        nonlocal queue_position, sequence
        v = int(order[queue_position])
        duration = float(durations[queue_position])
        queue_position += 1
        target, gain = single_move(
            graph, state, v, resolution, allow_escape=allow_escape
        )
        read_assignment = int(state.assignments[v])
        heapq.heappush(
            heap, (now + duration, sequence, v, read_assignment, target, gain)
        )
        sequence += 1

    now = 0.0
    for _ in range(min(num_workers, order.size)):
        start_task(now)
    extra_queue: List[int] = []
    while heap:
        now, _seq, v, read_assignment, target, gain = heapq.heappop(heap)
        current = int(state.assignments[v])
        if target != current:
            if current == read_assignment:
                # CAS succeeds: commit the move.
                origins.append(current)
                state.move_one(v, target)
                movers.append(v)
                targets_out.append(target)
                total_gain += float(gain)
            elif v not in retried:
                # CAS failed (vertex moved under us): retry once.
                retried.add(v)
                extra_queue.append(v)
        if queue_position < order.size:
            start_task(now)
        elif extra_queue:
            retry_v = extra_queue.pop()
            target, gain = single_move(
                graph, state, retry_v, resolution, allow_escape=allow_escape
            )
            heapq.heappush(
                heap,
                (now + 1.0 + graph.degree(retry_v), sequence, retry_v,
                 int(state.assignments[retry_v]), target, gain),
            )
            sequence += 1
    return (
        np.asarray(movers, dtype=np.int64),
        np.asarray(origins, dtype=np.int64),
        np.asarray(targets_out, dtype=np.int64),
        total_gain,
    )


def run_event_driven_best_moves(
    graph: CSRGraph,
    state: ClusterState,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    initial_frontier: Optional[np.ndarray] = None,
) -> BestMovesStats:
    """BEST-MOVES under the event-driven asynchrony model."""
    stats = BestMovesStats()
    obs = instr_of(sched)
    n = graph.num_vertices
    active = (
        np.arange(n, dtype=np.int64)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=np.int64)
    )
    for _ in range(config.iteration_bound):
        if active.size == 0:
            stats.converged = True
            break
        frontier_size = int(active.size)
        stats.frontier_sizes.append(frontier_size)
        with obs.span(
            "round", engine="event", iteration=stats.iterations,
            frontier=frontier_size,
        ) as round_span:
            order = rng.permutation(active) if rng is not None else active
            movers, origins, targets, gain = _event_iteration(
                graph, state, order, resolution, config.resolved_workers,
                config.escape_moves, kernel=config.kernel,
            )
            if sched is not None:
                degrees = graph.offsets[order + 1] - graph.offsets[order]
                sched.charge(
                    work=float(degrees.sum()) + 4.0 * order.size,
                    depth=float(degrees.max()) if degrees.size else 1.0,
                    label="event-async",
                )
            stats.iterations += 1
            round_span.set(moves=int(movers.size), gain=gain)
            obs.record_round("event", frontier_size, int(movers.size), gain)
            if movers.size == 0:
                stats.converged = True
                break
            stats.total_moves += int(movers.size)
            active = next_frontier(
                graph, state.assignments, movers, origins, targets,
                config.frontier, sched=sched,
            )
            if sched is not None:
                # Even the event oracle joins at the round boundary: the
                # next frontier is a global read of this round's moves.
                sched.round_barrier()
    return stats
