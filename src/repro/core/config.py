"""Clustering configuration: objective parameters and optimization toggles.

The three optimization axes of Section 3.2 map to three enum/boolean
fields; Section 4.1 establishes the best trade-off to be asynchronous
moves, the vertex-neighbor frontier, and multi-level refinement — which
are therefore the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.errors import ConfigError
from repro.parallel.scheduler import Machine


class Objective(Enum):
    """Which instantiation of the LambdaCC objective to optimize."""

    #: Correlation clustering: unit vertex weights, resolution = lambda.
    CORRELATION = "correlation"
    #: Modularity: k_v = weighted degree, lambda = gamma / (2 m_w).
    MODULARITY = "modularity"


class Mode(Enum):
    """Vertex-move scheduling within BEST-MOVES (Section 3.2.1)."""

    #: All of V' computes against one snapshot, then moves in lockstep.
    SYNC = "sync"
    #: Moves apply per concurrency window; later windows see earlier moves.
    ASYNC = "async"


class Frontier(Enum):
    """Which vertices to (re)consider each iteration (Section 3.2.2)."""

    ALL = "all"
    #: Neighbors of clusters affected by the previous iteration's moves.
    CLUSTER_NEIGHBORS = "cluster-neighbors"
    #: Neighbors of vertices moved in the previous iteration (the default).
    VERTEX_NEIGHBORS = "vertex-neighbors"


@dataclass(frozen=True)
class ClusteringConfig:
    """Full configuration for a clustering run.

    Attributes
    ----------
    objective:
        :class:`Objective` choice.
    resolution:
        ``lambda`` for correlation clustering (must lie in (0, 1), or 0 for
        degenerate test cases), ``gamma`` for modularity (positive).
    parallel:
        Run PARALLEL-CC (True) or SEQUENTIAL-CC (False).
    mode, frontier, refine:
        The Section 3.2 optimization axes (parallel runs only; the
        sequential baseline honours ``frontier`` and ``refine`` as in
        Section 4.2 but is inherently asynchronous/ordered).
    num_iter:
        Bound on best-move iterations per level (paper default 10).
        ``None`` means run to convergence (the ^CON superscript variants).
    num_workers, machine:
        Simulated-parallelism parameters (see DESIGN.md).  ``num_workers=0``
        means *auto*: resolve via ``os.cpu_count()`` capped by the machine
        profile's ``max_workers`` (the natural choice when running the
        process backend on real cores).
    async_windows:
        Number of concurrency windows an asynchronous iteration is split
        into; the window size is ``max(num_workers, ceil(|V'| / async_windows))``.
        Models the staleness horizon of true asynchrony (DESIGN.md §2);
        varied by the batch-size ablation bench.
    kernel_threshold:
        Degree above which the parallel hash-table best-move kernel is
        charged instead of the sequential one (Appendix B).
    kernel:
        Move-evaluation kernel (:mod:`repro.kernels`): ``"vectorized"``
        (segment-reduction fast path, the default) or ``"reference"``
        (dict-loop oracle).  Bit-identical outputs; only wall-clock
        differs (DESIGN.md §8).
    backend:
        Execution backend (:mod:`repro.parallel.backend`): ``"simulated"``
        (inline, the default) or ``"process"`` (persistent shared-memory
        worker pool on real cores).  Bit-identical results; only wall
        clock differs (DESIGN.md §13).  Deliberately excluded from
        :meth:`describe`/:meth:`config_tag` so checkpoints cross backends
        exactly as they cross kernels and engines.
    escape_moves:
        Allow a vertex whose every option has negative gain to escape to
        its (empty) home cluster slot.  Needed for correctness under
        negative rescaled weights; disabled only by the singleton-escape
        ablation bench.
    seed:
        RNG seed for permutations and window formation.
    max_levels:
        Safety bound on coarsening recursion depth.
    """

    objective: Objective = Objective.CORRELATION
    resolution: float = 0.01
    parallel: bool = True
    mode: Mode = Mode.ASYNC
    frontier: Frontier = Frontier.VERTEX_NEIGHBORS
    refine: bool = True
    num_iter: Optional[int] = 10
    num_workers: int = 60
    machine: Machine = field(default_factory=Machine.c2_standard_60)
    async_windows: int = 32
    kernel_threshold: int = 512
    kernel: str = "vectorized"
    backend: str = "simulated"
    escape_moves: bool = True
    seed: Optional[int] = None
    max_levels: int = 50

    def __post_init__(self) -> None:
        if self.objective is Objective.CORRELATION:
            if not 0.0 <= self.resolution < 1.0:
                raise ConfigError(
                    f"correlation resolution (lambda) must be in [0, 1), got {self.resolution}"
                )
        else:
            if not self.resolution > 0:
                raise ConfigError(
                    f"modularity resolution (gamma) must be positive, got {self.resolution}"
                )
        if self.num_iter is not None and self.num_iter < 1:
            raise ConfigError(f"num_iter must be >= 1 or None, got {self.num_iter}")
        if self.num_workers < 0:
            raise ConfigError(
                f"num_workers must be >= 1, or 0 for auto, got {self.num_workers}"
            )
        if self.async_windows < 1:
            raise ConfigError(f"async_windows must be >= 1, got {self.async_windows}")
        if self.max_levels < 1:
            raise ConfigError(f"max_levels must be >= 1, got {self.max_levels}")
        if self.kernel_threshold < 1:
            raise ConfigError(
                f"kernel_threshold must be >= 1, got {self.kernel_threshold}"
            )
        # Imported here to keep repro.kernels import-light at config load.
        from repro.kernels import KERNELS

        if self.kernel not in KERNELS:
            raise ConfigError(
                f"kernel must be one of {sorted(KERNELS)}, got {self.kernel!r}"
            )
        from repro.parallel.backend.base import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"backend must be one of {list(BACKEND_NAMES)}, got {self.backend!r}"
            )

    @property
    def resolved_workers(self) -> int:
        """``num_workers`` with 0 resolved to the host's usable core count."""
        if self.num_workers >= 1:
            return self.num_workers
        from repro.parallel.backend.base import resolve_workers

        return resolve_workers(0, self.machine)

    @property
    def iteration_bound(self) -> int:
        """``num_iter``, with convergence runs bounded only by a large cap."""
        return self.num_iter if self.num_iter is not None else 10_000

    @property
    def run_to_convergence(self) -> bool:
        return self.num_iter is None

    def with_options(self, **changes) -> "ClusteringConfig":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # argparse round-trip
    # ------------------------------------------------------------------ #

    @classmethod
    def add_args(cls, parser, *, include_objective: bool = True) -> None:
        """Register the standard config flags on ``parser``.

        One canonical flag block shared by every CLI subcommand that
        builds a :class:`ClusteringConfig` (``cluster`` / ``update`` /
        ``serve-sim`` / ``serve``), paired with :meth:`from_args` for the
        reverse direction.  ``include_objective=False`` omits the
        ``--objective`` flag for correlation-only subcommands (the
        dynamic subsystem).
        """
        if include_objective:
            parser.add_argument(
                "--objective",
                choices=[o.value for o in Objective],
                default="correlation",
            )
        parser.add_argument(
            "--resolution", type=float, default=0.01,
            help="lambda (correlation) or gamma (modularity)",
        )
        parser.add_argument(
            "--sequential", action="store_true",
            help="run SEQ instead of PAR",
        )
        parser.add_argument(
            "--mode", choices=[m.value for m in Mode], default="async"
        )
        parser.add_argument(
            "--frontier",
            choices=[f.value for f in Frontier],
            default="vertex-neighbors",
        )
        parser.add_argument("--no-refine", action="store_true")
        parser.add_argument("--num-iter", type=int, default=10)
        parser.add_argument(
            "--converge", action="store_true",
            help="run to convergence (the ^CON variants)",
        )
        parser.add_argument(
            "--workers", type=int, default=60,
            help="simulated worker lanes / process-pool size (0 = auto: "
                 "one per host core, capped by the machine model)",
        )
        parser.add_argument(
            "--kernel", choices=["vectorized", "reference"],
            default="vectorized",
            help="move-evaluation kernel (bit-identical results; "
                 "reference is the dict-loop oracle)",
        )
        parser.add_argument(
            "--backend", choices=["simulated", "process"],
            default="simulated",
            help="execution backend (bit-identical results; 'process' "
                 "fans batch work out to a warm shared-memory worker "
                 "pool on real cores, falling back to simulated when "
                 "the host cannot support it)",
        )
        parser.add_argument("--seed", type=int, default=None)

    @classmethod
    def from_args(
        cls, args, *, objective: Optional["Objective"] = None
    ) -> "ClusteringConfig":
        """Build a config from an :meth:`add_args` namespace.

        ``objective`` pins the objective for correlation-only
        subcommands whose parser omitted ``--objective``.
        """
        if objective is None:
            objective = Objective(getattr(args, "objective", "correlation"))
        return cls(
            objective=objective,
            resolution=args.resolution,
            parallel=not args.sequential,
            mode=Mode(args.mode),
            frontier=Frontier(args.frontier),
            refine=not args.no_refine,
            num_iter=None if args.converge else args.num_iter,
            num_workers=args.workers,
            kernel=args.kernel,
            backend=getattr(args, "backend", "simulated"),
            seed=args.seed,
        )

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``PAR-CC[async,vertex-nbrs,refine]``."""
        base = "PAR" if self.parallel else "SEQ"
        obj = "CC" if self.objective is Objective.CORRELATION else "MOD"
        opts = [self.mode.value, self.frontier.value, "refine" if self.refine else "no-refine"]
        con = "^CON" if self.run_to_convergence else ""
        return f"{base}-{obj}{con}[{','.join(opts)}]"

    def config_tag(self, effective_lambda: float) -> str:
        """Checkpoint compatibility tag for this config at a resolution.

        Deliberately built from :meth:`describe` — which excludes the
        kernel and the engine — so a checkpoint written on one fallback
        rung (e.g. the vectorized kernel) can be resumed on another (the
        reference kernel, or the sequential engine): the multilevel
        hierarchy and objective are what must match, not the executor.
        """
        return f"{self.describe()}|lambda={effective_lambda:.12g}"
