"""RunOptions: the consolidated execution-context bundle for ``cluster``.

Over nine PRs :func:`repro.core.api.cluster` accreted one keyword per
subsystem — ``resilience=``, ``instrumentation=``, ``engine=``,
``supervisor=``, ``backend=`` — none of which changes *what* is
computed, only *how* the run executes (fault handling, telemetry,
engine override, retry ladder, worker pool).  :class:`RunOptions`
bundles them into one typed, frozen value so the public signature stays
``cluster(graph, config, options=)`` no matter how many execution
subsystems grow underneath, and so option bundles can be built once and
reused across runs (the serving gateway and the supervisor both do).

The legacy keywords remain as deprecated shims on ``cluster`` itself:
they emit :class:`DeprecationWarning` and forward here, bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["RunOptions"]


@dataclass(frozen=True)
class RunOptions:
    """Execution options for one clustering run (DESIGN.md §14).

    Every field defaults to ``None`` — the plain, uninstrumented,
    unsupervised inline run.  None of these fields can change the
    clustering result except ``engine`` (which selects a different
    BEST-MOVES schedule) and a degrading ``resilience`` policy; the
    backend and instrumentation are bit-identity-preserving by contract
    (DESIGN.md §7/§13).

    Attributes
    ----------
    resilience:
        A :class:`~repro.resilience.context.ResiliencePolicy` — fault
        injection, auditing, budgets, checkpoint/resume.
    instrumentation:
        An :class:`~repro.obs.instrument.Instrumentation` — span trace
        plus metrics registry.
    engine:
        BEST-MOVES engine override by registry name (see
        :data:`repro.core.engines.ENGINES`).
    supervisor:
        A :class:`~repro.supervisor.RunSupervisor` — retry-with-resume,
        watchdog deadlines, fallback ladder.
    backend:
        An already-open :class:`~repro.parallel.backend.ExecutionBackend`
        to reuse (e.g. a warm process pool); when ``None``,
        ``config.backend`` selects one per run.
    """

    resilience: Optional[object] = None
    instrumentation: Optional[object] = None
    engine: Optional[str] = None
    supervisor: Optional[object] = None
    backend: Optional[object] = None

    def with_options(self, **changes) -> "RunOptions":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    def merged_with(self, **overrides) -> "RunOptions":
        """A copy where non-``None`` overrides win over current fields."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self

    @classmethod
    def field_names(cls) -> tuple:
        """The option field names, in declaration order."""
        return tuple(f.name for f in fields(cls))
