"""The "more faithful" prefix parallelization the paper describes (§3.2).

    "A more faithful parallelization would fix a random permutation of V,
    and move in parallel the first l vertices in order for the largest l
    such that moving these l vertices would not affect each other's
    objectives.  However, ... not only does this involve greater overhead
    due to the prefix computation of vertices that do not conflict, but it
    also respects sequential dependencies that may not affect later vertex
    moves."

This module implements that alternative so the trade-off can be measured
(see ``benchmarks/bench_ablation_prefix.py``): per round, take the longest
prefix of the permutation that is pairwise non-conflicting, move it as one
window, and charge the prefix computation.

Two vertices *conflict* when moving both could change the other's gain:
they are adjacent, or share a current cluster, or one's destination is
the other's current or destination cluster.  The conservative test below
(disjoint {current, target} cluster sets and no adjacency into a mover)
guarantees the parallel application equals applying the prefix moves
sequentially in permutation order — property-tested.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.best_moves import BestMovesStats
from repro.core.config import ClusteringConfig
from repro.core.frontier import next_frontier
from repro.core.moves import compute_batch_moves
from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.obs.instrument import instr_of


def conflict_free_prefix(
    graph: CSRGraph,
    state: ClusterState,
    order: np.ndarray,
    targets: np.ndarray,
) -> int:
    """Length of the longest non-conflicting prefix of ``order``.

    ``targets[i]`` is vertex ``order[i]``'s desired cluster (computed
    against the current state).  Vertices that do not move never conflict.
    """
    n = graph.num_vertices
    touched_clusters = np.zeros(n, dtype=bool)
    mover_vertices = np.zeros(n, dtype=bool)
    length = 0
    for i in range(order.size):
        v = int(order[i])
        target = int(targets[i])
        current = int(state.assignments[v])
        if target == current:
            length += 1
            continue
        # Cluster-level conflicts: someone in the prefix already touches
        # our source or destination cluster.
        if touched_clusters[current] or touched_clusters[target]:
            break
        # Adjacency conflicts: v neighbors an earlier mover (its gain was
        # computed against that mover's pre-move position).
        nbrs = graph.neighbors[graph.offsets[v]: graph.offsets[v + 1]]
        if mover_vertices[nbrs].any():
            break
        touched_clusters[current] = True
        touched_clusters[target] = True
        mover_vertices[v] = True
        length += 1
    return max(length, 1)  # always make progress


def run_prefix_best_moves(
    graph: CSRGraph,
    state: ClusterState,
    resolution: float,
    config: ClusteringConfig,
    sched=None,
    rng: Optional[np.random.Generator] = None,
    initial_frontier: Optional[np.ndarray] = None,
) -> BestMovesStats:
    """BEST-MOVES with prefix-faithful scheduling.

    Each iteration fixes one random permutation of the frontier and
    consumes it prefix-by-prefix: desired clusters are recomputed for the
    remaining vertices, the longest conflict-free prefix moves in
    parallel, and the process repeats until the permutation is exhausted.
    The result is equivalent to the sequential schedule over the same
    permutation, at the cost of the prefix computations — exactly the
    overhead the paper cites for rejecting this design.
    """
    stats = BestMovesStats()
    obs = instr_of(sched)
    n = graph.num_vertices
    active = (
        np.arange(n, dtype=np.int64)
        if initial_frontier is None
        else np.asarray(initial_frontier, dtype=np.int64)
    )
    for _ in range(config.iteration_bound):
        if active.size == 0:
            stats.converged = True
            break
        frontier_size = int(active.size)
        stats.frontier_sizes.append(frontier_size)
        with obs.span(
            "round", engine="prefix", iteration=stats.iterations,
            frontier=frontier_size,
        ) as round_span:
            order = (
                rng.permutation(active) if rng is not None else active.copy()
            )
            movers_parts: List[np.ndarray] = []
            origins_parts: List[np.ndarray] = []
            targets_parts: List[np.ndarray] = []
            round_gain = 0.0
            position = 0
            while position < order.size:
                # Bounded lookahead: prefixes are short in practice, so only
                # the head of the remaining permutation needs desired-cluster
                # recomputation each round.
                remaining = order[position: position + 4096]
                targets, gains = compute_batch_moves(
                    graph,
                    state,
                    remaining,
                    resolution,
                    sched=sched,
                    kernel_threshold=config.kernel_threshold,
                    charge_depth=False,
                    allow_escape=config.escape_moves,
                    kernel=config.kernel,
                )
                length = conflict_free_prefix(graph, state, remaining, targets)
                window = remaining[:length]
                window_targets = targets[:length]
                moving = window_targets != state.assignments[window]
                if moving.any():
                    movers_parts.append(window[moving])
                    origins_parts.append(state.assignments[window[moving]])
                    targets_parts.append(window_targets[moving])
                    round_gain += float(gains[:length][moving].sum())
                state.apply_moves(window, window_targets, sched=sched)
                if sched is not None:
                    # The prefix scan itself: a parallel max-prefix over the
                    # remaining vertices (work linear in the scanned region,
                    # depth logarithmic) — the overhead the paper highlights.
                    sched.charge(
                        work=float(remaining.size),
                        depth=np.log2(max(remaining.size, 2)) * 2.0,
                        label="prefix-scan",
                    )
                position += length
            stats.iterations += 1
            round_moves = (
                int(sum(part.size for part in movers_parts))
                if movers_parts
                else 0
            )
            round_span.set(moves=round_moves, gain=round_gain)
            obs.record_round("prefix", frontier_size, round_moves, round_gain)
            if not movers_parts:
                stats.converged = True
                break
            movers = np.concatenate(movers_parts)
            stats.total_moves += int(movers.size)
            active = next_frontier(
                graph,
                state.assignments,
                movers,
                np.concatenate(origins_parts),
                np.concatenate(targets_parts),
                config.frontier,
                sched=sched,
            )
            if sched is not None:
                # Prefix rounds end in a full join before the next
                # permutation is drawn; record the lane idle gaps.
                sched.round_barrier()
    return stats
