"""Mutable clustering state: assignments plus cluster aggregates.

BEST-MOVES needs, per cluster ``c``, the total vertex weight ``K_c``
(Section 3.1) and the member count (to know when a cluster slot frees up).
Cluster ids live in ``[0, n)``: vertex ``v`` starts in cluster ``v``, and a
vertex may later *escape* back to slot ``v`` when that slot is empty —
necessary under LambdaCC because negative rescaled weights can make any
occupied cluster worse than isolation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.parallel.atomics import atomic_add_window


class ClusterState:
    """Assignments with maintained ``K_c`` (weights) and sizes."""

    __slots__ = ("assignments", "cluster_weights", "cluster_sizes", "node_weights")

    def __init__(
        self,
        assignments: np.ndarray,
        cluster_weights: np.ndarray,
        cluster_sizes: np.ndarray,
        node_weights: np.ndarray,
    ) -> None:
        self.assignments = assignments
        self.cluster_weights = cluster_weights
        self.cluster_sizes = cluster_sizes
        self.node_weights = node_weights

    @classmethod
    def singletons(cls, graph: CSRGraph) -> "ClusterState":
        """Every vertex in its own cluster (cluster id = vertex id)."""
        n = graph.num_vertices
        return cls(
            assignments=np.arange(n, dtype=np.int64),
            cluster_weights=graph.node_weights.astype(np.float64).copy(),
            cluster_sizes=np.ones(n, dtype=np.int64),
            node_weights=graph.node_weights,
        )

    @classmethod
    def from_assignments(cls, graph: CSRGraph, assignments: np.ndarray) -> "ClusterState":
        """State for an existing clustering (cluster ids must be < n)."""
        n = graph.num_vertices
        assignments = np.asarray(assignments, dtype=np.int64).copy()
        if assignments.shape != (n,):
            raise ValueError(f"assignments must have shape ({n},)")
        if assignments.size and (assignments.min() < 0 or assignments.max() >= n):
            raise ValueError("cluster ids must lie in [0, n)")
        weights = np.zeros(n, dtype=np.float64)
        np.add.at(weights, assignments, graph.node_weights)
        sizes = np.bincount(assignments, minlength=n).astype(np.int64)
        return cls(assignments, weights, sizes, graph.node_weights)

    @property
    def num_vertices(self) -> int:
        return self.assignments.size

    @property
    def num_clusters(self) -> int:
        return int((self.cluster_sizes > 0).sum())

    def apply_moves(
        self,
        vertices: np.ndarray,
        targets: np.ndarray,
        sched=None,
    ) -> int:
        """Move ``vertices[i]`` to ``targets[i]``; returns how many moved.

        Models the asynchronous setting's pair of atomic updates per mover
        (leave the old cluster, join the new one), charging CAS contention
        for concurrent updates within this window.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        old = self.assignments[vertices]
        moving = old != targets
        if not moving.any():
            return 0
        movers = vertices[moving]
        old = old[moving]
        new = targets[moving]
        k = self.node_weights[movers].astype(np.float64)
        self.assignments[movers] = new
        # Two fetch-and-add windows: decrement sources, increment targets.
        atomic_add_window(self.cluster_weights, old, -k, sched=sched, label="K-dec")
        atomic_add_window(self.cluster_weights, new, k, sched=sched, label="K-inc")
        np.add.at(self.cluster_sizes, old, -1)
        np.add.at(self.cluster_sizes, new, 1)
        return int(movers.size)

    def move_one(self, v: int, target: int) -> bool:
        """Sequential single-vertex move (SEQUENTIAL-CC's inner step)."""
        old = self.assignments[v]
        if old == target:
            return False
        k = float(self.node_weights[v])
        self.assignments[v] = target
        self.cluster_weights[old] -= k
        self.cluster_weights[target] += k
        self.cluster_sizes[old] -= 1
        self.cluster_sizes[target] += 1
        return True

    def check_invariants(self, graph: Optional[CSRGraph] = None) -> None:
        """Raise AssertionError if aggregates disagree with assignments."""
        n = self.num_vertices
        sizes = np.bincount(self.assignments, minlength=n)
        assert np.array_equal(sizes, self.cluster_sizes), "cluster_sizes out of sync"
        weights = np.zeros(n, dtype=np.float64)
        np.add.at(weights, self.assignments, self.node_weights)
        assert np.allclose(weights, self.cluster_weights), "cluster_weights out of sync"
        if graph is not None:
            assert n == graph.num_vertices
