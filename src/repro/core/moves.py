"""Best-move computation kernels.

For each vertex ``v`` and candidate cluster ``c'``, the gain of residing in
``c'`` is ``S(v, c') - lambda * k_v * K_{c'\\v}`` where ``S(v, c')`` sums
``v``'s edge weights into ``c'`` and ``K_{c'\\v}`` is the cluster weight
excluding ``v`` (Appendix A).  The best move maximizes this over the
clusters of ``v``'s neighbors, staying put, and — when the vertex's home
slot is free — escaping to a fresh singleton (profitable whenever every
reachable cluster has negative gain, which negative rescaled weights make
common).

:func:`compute_batch_moves` evaluates a whole *batch* of vertices against
one state snapshot, vectorized; it is both the synchronous step (batch =
all of V') and the asynchronous concurrency window (batch ~ worker count).
Cost is charged per the Appendix B kernel split: low-degree vertices use a
sequential scan (depth = degree), high-degree vertices a parallel hash
table (depth = O(log degree), extra table-initialization work).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.parallel.hash_table import (
    PARALLEL_INSERT_COST,
    TABLE_SLACK,
    observe_table_metrics,
)
from repro.parallel.primitives import ragged_gather_indices

#: Minimum strict improvement for a move (guards float-noise oscillation).
GAIN_EPS = 1e-10


def kernel_depth(degrees: np.ndarray, threshold: int) -> float:
    """Critical-path depth of evaluating these vertices concurrently.

    Low-degree vertices use the sequential scan kernel (depth = degree);
    high-degree vertices the parallel hash table (depth = O(log degree));
    the batch's depth is the worst single-vertex kernel (Appendix B).
    """
    if degrees.size == 0:
        return 1.0
    par_mask = degrees > threshold
    seq_depth = float(degrees[~par_mask].max()) if (~par_mask).any() else 0.0
    par_depth = (
        2.0 * math.log2(float(degrees[par_mask].max())) if par_mask.any() else 0.0
    )
    return max(seq_depth, par_depth, 1.0)


def _charge_batch(
    sched,
    degrees: np.ndarray,
    threshold: int,
    label: str,
    include_depth: bool = True,
) -> None:
    """Charge one batch's best-move cost under the dual-kernel model.

    ``include_depth=False`` charges work only: asynchronous execution has
    no barrier between concurrency windows, so the engine charges a single
    depth term per BEST-MOVES *iteration* instead of per window.
    """
    if sched is None or degrees.size == 0:
        return
    deg_sum = float(degrees.sum())
    par_mask = degrees > threshold
    # ~5 ops per edge scanned (neighbor load, cluster-id load, hash insert,
    # weight accumulate) plus per-vertex gain arithmetic; an EDGEMAP scan
    # by contrast costs ~1 op per edge, which is why frontier maintenance
    # is cheap relative to move computation.
    work = 5.0 * deg_sum + 8.0 * degrees.size
    if par_mask.any():
        par_deg = degrees[par_mask].astype(np.float64)
        work += (PARALLEL_INSERT_COST - 1.0) * float(par_deg.sum())
        work += TABLE_SLACK * float(par_deg.sum())
    depth = kernel_depth(degrees, threshold) if include_depth else 0.0
    sched.charge(work=work, depth=depth, label=label, items=int(degrees.size))
    instr = getattr(sched, "instr", None)
    if instr is not None and instr.enabled:
        observe_table_metrics(instr, degrees, threshold, label=label)


def compute_batch_moves(
    graph: CSRGraph,
    state: ClusterState,
    batch: np.ndarray,
    resolution: float,
    sched=None,
    kernel_threshold: int = 512,
    label: str = "best-moves",
    charge_depth: bool = True,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Desired cluster per batch vertex against the current state snapshot.

    Returns ``(targets, gains)`` aligned with ``batch``: ``targets[i]`` is
    the cluster that maximizes vertex ``batch[i]``'s objective (its current
    cluster when no strict improvement exists) and ``gains[i] >= 0`` is the
    objective improvement (unordered ``F`` scale) of taking that move in
    isolation.
    """
    batch = np.asarray(batch, dtype=np.int64)
    if batch.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=np.float64)
    n = graph.num_vertices
    assignments = state.assignments
    cluster_weights = state.cluster_weights

    edge_idx, row = ragged_gather_indices(graph.offsets, batch)
    nbr_clusters = assignments[graph.neighbors[edge_idx]]
    edge_w = graph.weights[edge_idx]

    k_batch = graph.node_weights[batch]
    current = assignments[batch]
    stay_gain = -resolution * k_batch * (cluster_weights[current] - k_batch)

    best_gain = stay_gain.copy()
    targets = current.copy()

    if edge_idx.size:
        # Aggregate S(v, c) for every (batch vertex, neighboring cluster).
        key = row * np.int64(n) + nbr_clusters
        unique_key, inverse = np.unique(key, return_inverse=True)
        sums = np.bincount(inverse, weights=edge_w, minlength=unique_key.size)
        cand_row = (unique_key // n).astype(np.int64)
        cand_cluster = (unique_key % n).astype(np.int64)

        own = cand_cluster == current[cand_row]
        if own.any():
            # At most one "own cluster" entry per row: direct scatter.
            stay_gain[cand_row[own]] += sums[own]
            best_gain = stay_gain.copy()

        ext_idx = np.flatnonzero(~own)
        if ext_idx.size and swap_avoidance:
            ext_row = cand_row[ext_idx]
            ext_cluster = cand_cluster[ext_idx]
            # Swap-avoidance heuristic for *synchronous* scheduling (Lu et
            # al. [27], used by Grappolo): a singleton vertex may merge
            # into another singleton cluster only when the target id is
            # smaller than its own — otherwise lockstep rounds swap
            # mutually-attracted singleton pairs forever and synchronous
            # runs never converge.  Asynchronous and sequential schedules
            # self-heal (the second vertex of a pair sees the first's
            # move), so they run pure best moves.
            allowed = ~(
                (state.cluster_sizes[current[ext_row]] == 1)
                & (state.cluster_sizes[ext_cluster] == 1)
                & (ext_cluster > current[ext_row])
            )
            ext_idx = ext_idx[allowed]
        if ext_idx.size:
            ext_row = cand_row[ext_idx]
            ext_cluster = cand_cluster[ext_idx]
            ext_gain = (
                sums[ext_idx]
                - resolution * k_batch[ext_row] * cluster_weights[ext_cluster]
            )
            # Per-row argmax: sort by (row, -gain, cluster id) and take the
            # first entry of each row group; the cluster-id tiebreak makes
            # the kernel deterministic given the state snapshot.
            order = np.lexsort((ext_cluster, -ext_gain, ext_row))
            rows_present, first = np.unique(ext_row[order], return_index=True)
            sel = order[first]
            chosen_gain = ext_gain[sel]
            improved = chosen_gain > stay_gain[rows_present] + GAIN_EPS
            hit = rows_present[improved]
            targets[hit] = ext_cluster[sel][improved]
            best_gain[hit] = chosen_gain[improved]

    # Escape to the vertex's home slot when it sits empty and every other
    # option (including staying) loses to isolation (gain 0).
    if allow_escape:
        escape_open = state.cluster_sizes[batch] == 0
        escape = escape_open & (best_gain < -GAIN_EPS)
        if escape.any():
            targets[escape] = batch[escape]
            best_gain[escape] = 0.0

    degrees = graph.offsets[batch + 1] - graph.offsets[batch]
    _charge_batch(sched, degrees, kernel_threshold, label, include_depth=charge_depth)
    return targets, best_gain - stay_gain


def all_move_gains(
    graph: CSRGraph,
    state: ClusterState,
    v: int,
    resolution: float,
) -> dict:
    """Every candidate cluster's gain for vertex ``v`` (debugging API).

    Returns ``{cluster_id: gain}`` over the clusters of ``v``'s neighbors
    plus ``v``'s current cluster (staying) and, when available, the
    escape slot.  Gains are on the unordered ``F`` scale relative to the
    current placement, so ``gains[current] == 0`` and the engine's chosen
    target is the argmax (ties broken toward smaller ids).
    """
    assignments = state.assignments
    lo, hi = graph.offsets[v], graph.offsets[v + 1]
    nbr_clusters = assignments[graph.neighbors[lo:hi]]
    wts = graph.weights[lo:hi]
    acc: dict = {}
    for c, w in zip(nbr_clusters.tolist(), wts.tolist()):
        acc[c] = acc.get(c, 0.0) + w
    current = int(assignments[v])
    k_v = float(graph.node_weights[v])
    cw = state.cluster_weights
    stay = acc.get(current, 0.0) - resolution * k_v * (float(cw[current]) - k_v)
    gains = {current: 0.0}
    for c, s in acc.items():
        if c == current:
            continue
        gains[c] = (s - resolution * k_v * float(cw[c])) - stay
    if state.cluster_sizes[v] == 0:
        gains[v] = 0.0 - stay
    return gains


def compute_single_move(
    graph: CSRGraph,
    state: ClusterState,
    v: int,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
) -> Tuple[int, float]:
    """Sequential best-move for one vertex (SEQUENTIAL-CC's inner kernel).

    Semantically identical to a batch of size one; implemented with plain
    dict accumulation, which is faster for the per-vertex loop of the
    sequential algorithm.  Returns ``(target, gain)``.
    """
    assignments = state.assignments
    lo = graph.offsets[v]
    hi = graph.offsets[v + 1]
    nbr_clusters = assignments[graph.neighbors[lo:hi]]
    wts = graph.weights[lo:hi]
    acc: dict = {}
    for c, w in zip(nbr_clusters.tolist(), wts.tolist()):
        acc[c] = acc.get(c, 0.0) + w
    current = int(assignments[v])
    k_v = float(graph.node_weights[v])
    cw = state.cluster_weights
    stay = acc.get(current, 0.0) - resolution * k_v * (float(cw[current]) - k_v)
    best_ext_gain = -math.inf
    best_ext_cluster = -1
    own_singleton = state.cluster_sizes[current] == 1
    for c, s in acc.items():
        if c == current:
            continue
        # Swap-avoidance under synchronous scheduling: see compute_batch_moves.
        if (
            swap_avoidance
            and own_singleton
            and c > current
            and state.cluster_sizes[c] == 1
        ):
            continue
        gain = s - resolution * k_v * float(cw[c])
        # Exact comparison with cluster-id tiebreak, mirroring the batch
        # kernel's lexsort so the two kernels agree bit-for-bit.
        if gain > best_ext_gain or (gain == best_ext_gain and c < best_ext_cluster):
            best_ext_gain = gain
            best_ext_cluster = c
    best_gain = stay
    best_cluster = current
    if best_ext_cluster >= 0 and best_ext_gain > stay + GAIN_EPS:
        best_gain = best_ext_gain
        best_cluster = best_ext_cluster
    if allow_escape and state.cluster_sizes[v] == 0 and best_gain < -GAIN_EPS:
        best_cluster = v
        best_gain = 0.0
    return best_cluster, best_gain - stay
