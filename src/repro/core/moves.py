"""Best-move computation: kernel dispatch plus the simulated cost model.

For each vertex ``v`` and candidate cluster ``c'``, the gain of residing in
``c'`` is ``S(v, c') - lambda * k_v * K_{c'\\v}`` where ``S(v, c')`` sums
``v``'s edge weights into ``c'`` and ``K_{c'\\v}`` is the cluster weight
excluding ``v`` (Appendix A).  The best move maximizes this over the
clusters of ``v``'s neighbors, staying put, and — when the vertex's home
slot is free — escaping to a fresh singleton (profitable whenever every
reachable cluster has negative gain, which negative rescaled weights make
common).

:func:`compute_batch_moves` evaluates a whole *batch* of vertices against
one state snapshot; it is both the synchronous step (batch = all of V')
and the asynchronous concurrency window (batch ~ worker count).  The
actual evaluation is delegated to a :mod:`repro.kernels` kernel selected
by the ``kernel`` argument (``ClusteringConfig.kernel``): the dict-loop
reference oracle or the segment-reduction vectorized fast path, which are
bit-identical in outputs (DESIGN.md §8).

This module owns the *cost model*, which is kernel-independent: cost is
charged per the Appendix B kernel split — low-degree vertices use a
sequential scan (depth = degree), high-degree vertices a parallel hash
table (depth = O(log degree), extra table-initialization work) — and is
invoked identically for every kernel, so ``sim_time_seconds`` stays
bit-for-bit comparable across kernel choices.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.state import ClusterState
from repro.graphs.csr import CSRGraph
from repro.kernels import DEFAULT_KERNEL, get_kernel
from repro.kernels.base import GAIN_EPS  # noqa: F401  (back-compat re-export)
from repro.kernels.reference import (
    accumulate_neighbor_weights,
    reference_single_move,
)
from repro.obs.instrument import M_KERNEL_BATCH
from repro.parallel.hash_table import (
    PARALLEL_INSERT_COST,
    TABLE_SLACK,
    observe_table_metrics,
)


def kernel_depth(degrees: np.ndarray, threshold: int) -> float:
    """Critical-path depth of evaluating these vertices concurrently.

    Low-degree vertices use the sequential scan kernel (depth = degree);
    high-degree vertices the parallel hash table (depth = O(log degree));
    the batch's depth is the worst single-vertex kernel (Appendix B).
    The parallel branch clamps to >= 1: a degree-1 vertex routed to the
    hash-table kernel (possible only with ``threshold < 1``) still pays
    at least one step, not ``2*log2(1) = 0``.
    """
    if degrees.size == 0:
        return 1.0
    par_mask = degrees > threshold
    seq_depth = float(degrees[~par_mask].max()) if (~par_mask).any() else 0.0
    par_depth = (
        max(2.0 * math.log2(float(degrees[par_mask].max())), 1.0)
        if par_mask.any()
        else 0.0
    )
    return max(seq_depth, par_depth, 1.0)


def _charge_batch(
    sched,
    degrees: np.ndarray,
    threshold: int,
    label: str,
    include_depth: bool = True,
) -> None:
    """Charge one batch's best-move cost under the dual-kernel model.

    ``include_depth=False`` charges work only: asynchronous execution has
    no barrier between concurrency windows, so the engine charges a single
    depth term per BEST-MOVES *iteration* instead of per window.
    """
    if sched is None or degrees.size == 0:
        return
    deg_sum = float(degrees.sum())
    par_mask = degrees > threshold
    # ~5 ops per edge scanned (neighbor load, cluster-id load, hash insert,
    # weight accumulate) plus per-vertex gain arithmetic; an EDGEMAP scan
    # by contrast costs ~1 op per edge, which is why frontier maintenance
    # is cheap relative to move computation.
    work = 5.0 * deg_sum + 8.0 * degrees.size
    if par_mask.any():
        par_deg = degrees[par_mask].astype(np.float64)
        work += (PARALLEL_INSERT_COST - 1.0) * float(par_deg.sum())
        work += TABLE_SLACK * float(par_deg.sum())
    depth = kernel_depth(degrees, threshold) if include_depth else 0.0
    sched.charge(work=work, depth=depth, label=label, items=int(degrees.size))
    instr = getattr(sched, "instr", None)
    if instr is not None and instr.enabled:
        observe_table_metrics(instr, degrees, threshold, label=label)


def compute_batch_moves(
    graph: CSRGraph,
    state: ClusterState,
    batch: np.ndarray,
    resolution: float,
    sched=None,
    kernel_threshold: int = 512,
    label: str = "best-moves",
    charge_depth: bool = True,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
    kernel: str = DEFAULT_KERNEL,
) -> Tuple[np.ndarray, np.ndarray]:
    """Desired cluster per batch vertex against the current state snapshot.

    Returns ``(targets, gains)`` aligned with ``batch``: ``targets[i]`` is
    the cluster that maximizes vertex ``batch[i]``'s objective (its current
    cluster when no strict improvement exists) and ``gains[i] >= 0`` is the
    objective improvement (unordered ``F`` scale) of taking that move in
    isolation.  ``kernel`` selects the evaluation kernel; the cost charged
    to ``sched`` is identical for every kernel.
    """
    batch = np.asarray(batch, dtype=np.int64)
    if batch.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=np.float64)
    instr = getattr(sched, "instr", None)
    backend = getattr(sched, "backend", None)
    if backend is not None and not backend.inline:
        # Execution backend (DESIGN.md §13): evaluate the batch on real
        # cores.  Bit-identical to the inline kernel call below, and the
        # cost model afterwards charges exactly the same, so only wall
        # clock differs between backends.
        targets, gains = backend.batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            kernel=kernel,
            instr=instr,
        )
    else:
        targets, gains = get_kernel(kernel).batch_moves(
            graph,
            state,
            batch,
            resolution,
            allow_escape=allow_escape,
            swap_avoidance=swap_avoidance,
            instr=instr,
        )
    if instr is not None and instr.enabled:
        instr.observe(M_KERNEL_BATCH, float(batch.size), kernel=kernel)
    degrees = graph.offsets[batch + 1] - graph.offsets[batch]
    _charge_batch(sched, degrees, kernel_threshold, label, include_depth=charge_depth)
    return targets, gains


def all_move_gains(
    graph: CSRGraph,
    state: ClusterState,
    v: int,
    resolution: float,
) -> dict:
    """Every candidate cluster's gain for vertex ``v`` (debugging API).

    Returns ``{cluster_id: gain}`` over the clusters of ``v``'s neighbors
    plus ``v``'s current cluster (staying) and, when available, the
    escape slot.  Gains are on the unordered ``F`` scale relative to the
    current placement, so ``gains[current] == 0`` and the engine's chosen
    target is the argmax (ties broken toward smaller ids).
    """
    assignments = state.assignments
    acc = accumulate_neighbor_weights(graph, assignments, v)
    current = int(assignments[v])
    k_v = float(graph.node_weights[v])
    cw = state.cluster_weights
    stay = acc.get(current, 0.0) - resolution * k_v * (float(cw[current]) - k_v)
    gains = {current: 0.0}
    for c, s in acc.items():
        if c == current:
            continue
        gains[c] = (s - resolution * k_v * float(cw[c])) - stay
    if state.cluster_sizes[v] == 0:
        gains[v] = 0.0 - stay
    return gains


def compute_single_move(
    graph: CSRGraph,
    state: ClusterState,
    v: int,
    resolution: float,
    allow_escape: bool = True,
    swap_avoidance: bool = False,
) -> Tuple[int, float]:
    """Sequential best-move for one vertex (SEQUENTIAL-CC's inner kernel).

    Thin wrapper over the reference kernel's single-vertex evaluation
    (:mod:`repro.kernels.reference`), kept here for back-compat: it is
    semantically a batch of size one, and both registered kernels resolve
    single-vertex evaluation to this dict path.
    """
    return reference_single_move(
        graph,
        state,
        v,
        resolution,
        allow_escape=allow_escape,
        swap_avoidance=swap_avoidance,
    )
