"""The paper's primary contribution: the LambdaCC Louvain framework.

Submodules follow the paper's structure:

* :mod:`repro.core.objective`   — LambdaCC / modularity objectives (Sec. 2);
* :mod:`repro.core.config`      — objective + optimization settings (Sec. 3.2);
* :mod:`repro.core.state`       — clustering state with cluster weights K_c;
* :mod:`repro.core.moves`       — best-move computation kernels (App. A/B);
* :mod:`repro.core.best_moves`  — BEST-MOVES with sync/async windows and
  frontier restriction (Alg. 1);
* :mod:`repro.core.louvain_seq` — SEQUENTIAL-CC (Alg. 2);
* :mod:`repro.core.louvain_par` — PARALLEL-CC with multi-level refinement;
* :mod:`repro.core.api`         — user-facing entry points.
"""

from repro.core.api import cluster, correlation_clustering, modularity_clustering
from repro.core.hierarchy import ClusterHierarchy, cluster_hierarchy
from repro.core.config import ClusteringConfig, Frontier, Mode, Objective
from repro.core.leiden import leiden_refine
from repro.core.objective import lambdacc_objective, modularity
from repro.core.result import ClusterResult

__all__ = [
    "ClusterHierarchy",
    "ClusterResult",
    "ClusteringConfig",
    "Frontier",
    "Mode",
    "Objective",
    "cluster",
    "cluster_hierarchy",
    "correlation_clustering",
    "lambdacc_objective",
    "leiden_refine",
    "modularity",
    "modularity_clustering",
]
